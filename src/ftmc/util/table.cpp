#include "ftmc/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ftmc::util {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::cell(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::cell(std::int64_t value) { return std::to_string(value); }
std::string Table::cell(std::size_t value) { return std::to_string(value); }

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::size_t columns = header.size();
  for (const auto& row : rows) columns = std::max(columns, row.size());
  std::vector<std::size_t> widths(columns, 0);
  for (std::size_t c = 0; c < header.size(); ++c)
    widths[c] = std::max(widths[c], header[c].size());
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  return widths;
}

void print_rule(std::ostream& os, const std::vector<std::size_t>& widths) {
  os << '+';
  for (std::size_t width : widths) {
    for (std::size_t i = 0; i < width + 2; ++i) os << '-';
    os << '+';
  }
  os << '\n';
}

void print_row(std::ostream& os, const std::vector<std::size_t>& widths,
               const std::vector<std::string>& row) {
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& text = c < row.size() ? row[c] : std::string{};
    os << ' ' << text;
    for (std::size_t i = text.size(); i < widths[c] + 1; ++i) os << ' ';
    os << '|';
  }
  os << '\n';
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print(std::ostream& os) const {
  if (!title_.empty()) os << title_ << '\n';
  const auto widths = column_widths(header_, rows_);
  if (widths.empty()) return;
  print_rule(os, widths);
  if (!header_.empty()) {
    print_row(os, widths, header_);
    print_rule(os, widths);
  }
  for (const auto& row : rows_) print_row(os, widths, row);
  print_rule(os, widths);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ftmc::util
