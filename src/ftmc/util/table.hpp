// ASCII / CSV table emission for the experiment benches.  Every bench binary
// reproduces a paper table or figure series; Table renders them uniformly.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ftmc::util {

/// Column-aligned text table with an optional title, printable as aligned
/// ASCII (for terminals) or CSV (for downstream plotting).
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; resets nothing else.
  void set_header(std::vector<std::string> header);

  /// Appends a data row (ragged rows are padded with empty cells on print).
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arithmetic cells with fixed precision.
  static std::string cell(double value, int precision = 2);
  static std::string cell(std::int64_t value);
  static std::string cell(std::size_t value);

  std::size_t row_count() const noexcept { return rows_.size(); }
  const std::string& title() const noexcept { return title_; }

  /// Aligned, boxed ASCII rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes cells containing separators/quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftmc::util
