#include "ftmc/util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

namespace ftmc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

bool ThreadPool::run_one_task() {
  std::function<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();
  return true;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  // Help drain the queue instead of blocking outright: this keeps nested
  // parallel_for calls from the pool's own workers deadlock-free (a worker
  // waiting here executes queued tasks, including the ones it submitted).
  // Every future must complete before this frame unwinds — the submitted
  // lambdas capture `fn` by reference, so rethrowing while later tasks are
  // still queued would leave them with a dangling reference to the caller's
  // (possibly temporary) function object. Collect the first exception and
  // rethrow only once all tasks have finished.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!run_one_task()) {
        future.wait();
        break;
      }
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ftmc::util
