// Fixed-size worker pool used to evaluate DSE candidates and Monte-Carlo
// fault profiles in parallel (the paper parallelizes candidate evaluation,
// Section 4).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ftmc::util {

/// A minimal but complete thread pool: submit() returns a future; the
/// destructor drains outstanding work before joining.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 -> hardware_concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future carries its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from tasks are rethrown (the first one encountered).
  ///
  /// Nesting-safe: while waiting, the calling thread drains queued work
  /// itself, so a task may call parallel_for on its own pool (candidate-
  /// level evaluation fanning out into per-scenario analysis) without
  /// deadlocking — some thread always holds a runnable task.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Pops and runs one queued task if any; returns false when idle.
  bool run_one_task();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ftmc::util
