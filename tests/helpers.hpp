// Shared fixtures for the test suite: small platforms, application sets,
// decoded random candidates, and bitwise result comparators for the
// differential kernel tests.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/core/evaluator.hpp"
#include "ftmc/core/exec_model.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/hardening/hardening.hpp"
#include "ftmc/model/application_set.hpp"
#include "ftmc/model/architecture.hpp"
#include "ftmc/model/task_graph.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/util/rng.hpp"

namespace ftmc::fixtures {

inline model::Processor test_pe(const std::string& name,
                                double fault_rate = 1.0e-8,
                                double speed = 1.0) {
  return model::Processor{name, 0, 10.0, 40.0, fault_rate, speed};
}

/// `count` identical PEs, bandwidth 1 byte/us.
inline model::Architecture test_arch(std::size_t count,
                                     double bandwidth = 1.0) {
  model::ArchitectureBuilder builder;
  for (std::size_t i = 0; i < count; ++i)
    builder.add_processor(test_pe("pe" + std::to_string(i)));
  builder.bandwidth(bandwidth);
  return builder.build();
}

/// Chain graph: t0 -> t1 -> ... with identical tasks.
inline model::TaskGraph chain_graph(const std::string& name,
                                    std::size_t tasks, model::Time bcet,
                                    model::Time wcet, model::Time period,
                                    bool droppable, double sv_or_f,
                                    std::uint64_t channel_bytes = 0,
                                    model::Time ve = 3, model::Time dt = 2) {
  model::TaskGraphBuilder builder(name);
  std::uint32_t previous = 0;
  for (std::size_t i = 0; i < tasks; ++i) {
    const auto id = builder.add_task(name + std::to_string(i), bcet, wcet,
                                     ve, dt);
    if (i > 0) builder.connect(previous, id, channel_bytes);
    previous = id;
  }
  builder.period(period);
  if (droppable)
    builder.droppable(sv_or_f);
  else
    builder.reliability(sv_or_f);
  return builder.build();
}

/// One critical 2-task chain + one droppable 2-task chain, same period.
inline model::ApplicationSet small_mixed_apps(model::Time period = 1000) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(chain_graph("crit", 2, 50, 100, period, false, 1e-6));
  graphs.push_back(chain_graph("drop", 2, 30, 60, period, true, 2.0));
  return model::ApplicationSet(std::move(graphs));
}

/// Identity candidate: everything on PE 0..n round-robin, no hardening,
/// nothing dropped.
inline core::Candidate plain_candidate(const model::Architecture& arch,
                                       const model::ApplicationSet& apps) {
  core::Candidate candidate;
  candidate.allocation.assign(arch.processor_count(), true);
  candidate.drop.assign(apps.graph_count(), false);
  candidate.plan.resize(apps.task_count());
  candidate.base_mapping.resize(apps.task_count());
  for (std::size_t i = 0; i < apps.task_count(); ++i)
    candidate.base_mapping[i] = model::ProcessorId{
        static_cast<std::uint32_t>(i % arch.processor_count())};
  return candidate;
}

/// A candidate decoded from a random chromosome plus its hardened system
/// (the unit the differential kernel tests iterate over).
struct CandidateFixture {
  core::Candidate candidate;
  hardening::HardenedSystem system;
  std::vector<std::uint32_t> priorities;
};

inline CandidateFixture make_candidate(const benchmarks::Benchmark& benchmark,
                                       util::Rng& rng) {
  const dse::Decoder decoder(benchmark.arch, benchmark.apps);
  dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
  core::Candidate candidate = decoder.decode(chromosome, rng);
  auto system = hardening::apply_hardening(benchmark.apps, candidate.plan,
                                           candidate.base_mapping,
                                           benchmark.arch.processor_count());
  auto priorities = sched::assign_priorities(system.apps);
  return {std::move(candidate), std::move(system), std::move(priorities)};
}

/// Scenario-shaped bounds vectors: the nominal vector plus seeded mutations
/// exercising every classification Algorithm 1 produces — certainly-dropped
/// [0,0], maybe-dropped [0, wcet] with a release cutoff, inflated critical
/// bounds, and untouched nominal tasks.
inline std::vector<std::vector<sched::ExecBounds>> scenario_like_bounds(
    const hardening::HardenedSystem& system, std::size_t count,
    util::Rng& rng) {
  const std::vector<sched::ExecBounds> nominal =
      core::nominal_bounds_of(system);
  std::vector<std::vector<sched::ExecBounds>> sets;
  sets.push_back(nominal);
  const model::Time hyperperiod = system.apps.hyperperiod();
  while (sets.size() < count) {
    std::vector<sched::ExecBounds> bounds = nominal;
    for (sched::ExecBounds& b : bounds) {
      switch (rng.index(5)) {
        case 0:
          b = {0, 0};
          break;
        case 1:
          b = {0, b.wcet, rng.uniform_int(0, hyperperiod)};
          break;
        case 2:
          b = {b.bcet, b.wcet * 2 + 5};
          break;
        default:
          break;  // keep nominal
      }
    }
    sets.push_back(std::move(bounds));
  }
  return sets;
}

/// Bitwise equality of two backend results (windows, verdicts).
inline void expect_same_result(const sched::AnalysisResult& a,
                               const sched::AnalysisResult& b) {
  EXPECT_EQ(a.schedulable, b.schedulable);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].min_start, b.windows[i].min_start);
    EXPECT_EQ(a.windows[i].min_finish, b.windows[i].min_finish);
    EXPECT_EQ(a.windows[i].max_start, b.windows[i].max_start);
    EXPECT_EQ(a.windows[i].max_finish, b.windows[i].max_finish);
    EXPECT_EQ(a.windows[i].schedulable, b.windows[i].schedulable);
  }
}

/// Bitwise equality of two Algorithm-1 results.
inline void expect_same_mc_result(const core::McAnalysisResult& a,
                                  const core::McAnalysisResult& b) {
  EXPECT_EQ(a.wcrt, b.wcrt);
  EXPECT_EQ(a.normal_schedulable, b.normal_schedulable);
  EXPECT_EQ(a.critical_schedulable, b.critical_schedulable);
  EXPECT_EQ(a.scenario_count, b.scenario_count);
  expect_same_result(a.normal, b.normal);
}

}  // namespace ftmc::fixtures
