// Shared fixtures for the test suite: small platforms and application sets.
#pragma once

#include <vector>

#include "ftmc/core/evaluator.hpp"
#include "ftmc/hardening/hardening.hpp"
#include "ftmc/model/application_set.hpp"
#include "ftmc/model/architecture.hpp"
#include "ftmc/model/task_graph.hpp"

namespace ftmc::fixtures {

inline model::Processor test_pe(const std::string& name,
                                double fault_rate = 1.0e-8,
                                double speed = 1.0) {
  return model::Processor{name, 0, 10.0, 40.0, fault_rate, speed};
}

/// `count` identical PEs, bandwidth 1 byte/us.
inline model::Architecture test_arch(std::size_t count,
                                     double bandwidth = 1.0) {
  model::ArchitectureBuilder builder;
  for (std::size_t i = 0; i < count; ++i)
    builder.add_processor(test_pe("pe" + std::to_string(i)));
  builder.bandwidth(bandwidth);
  return builder.build();
}

/// Chain graph: t0 -> t1 -> ... with identical tasks.
inline model::TaskGraph chain_graph(const std::string& name,
                                    std::size_t tasks, model::Time bcet,
                                    model::Time wcet, model::Time period,
                                    bool droppable, double sv_or_f,
                                    std::uint64_t channel_bytes = 0,
                                    model::Time ve = 3, model::Time dt = 2) {
  model::TaskGraphBuilder builder(name);
  std::uint32_t previous = 0;
  for (std::size_t i = 0; i < tasks; ++i) {
    const auto id = builder.add_task(name + std::to_string(i), bcet, wcet,
                                     ve, dt);
    if (i > 0) builder.connect(previous, id, channel_bytes);
    previous = id;
  }
  builder.period(period);
  if (droppable)
    builder.droppable(sv_or_f);
  else
    builder.reliability(sv_or_f);
  return builder.build();
}

/// One critical 2-task chain + one droppable 2-task chain, same period.
inline model::ApplicationSet small_mixed_apps(model::Time period = 1000) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(chain_graph("crit", 2, 50, 100, period, false, 1e-6));
  graphs.push_back(chain_graph("drop", 2, 30, 60, period, true, 2.0));
  return model::ApplicationSet(std::move(graphs));
}

/// Identity candidate: everything on PE 0..n round-robin, no hardening,
/// nothing dropped.
inline core::Candidate plain_candidate(const model::Architecture& arch,
                                       const model::ApplicationSet& apps) {
  core::Candidate candidate;
  candidate.allocation.assign(arch.processor_count(), true);
  candidate.drop.assign(apps.graph_count(), false);
  candidate.plan.resize(apps.task_count());
  candidate.base_mapping.resize(apps.task_count());
  for (std::size_t i = 0; i < apps.task_count(); ++i)
    candidate.base_mapping[i] = model::ProcessorId{
        static_cast<std::uint32_t>(i % arch.processor_count())};
  return candidate;
}

}  // namespace ftmc::fixtures
