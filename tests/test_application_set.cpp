#include "ftmc/model/application_set.hpp"

#include <gtest/gtest.h>

namespace {

using ftmc::model::ApplicationSet;
using ftmc::model::GraphId;
using ftmc::model::TaskGraph;
using ftmc::model::TaskGraphBuilder;
using ftmc::model::TaskRef;

TaskGraph make_graph(const std::string& name, std::size_t tasks,
                     ftmc::model::Time period, bool droppable) {
  TaskGraphBuilder builder(name);
  std::uint32_t previous = 0;
  for (std::size_t i = 0; i < tasks; ++i) {
    const auto id = builder.add_task(name + "_t" + std::to_string(i), 1, 2);
    if (i > 0) builder.connect(previous, id);
    previous = id;
  }
  builder.period(period);
  if (droppable)
    builder.droppable(1.0);
  else
    builder.reliability(0.5);
  return builder.build();
}

ApplicationSet make_set() {
  std::vector<TaskGraph> graphs;
  graphs.push_back(make_graph("a", 3, 100, false));
  graphs.push_back(make_graph("b", 2, 50, true));
  graphs.push_back(make_graph("c", 4, 200, false));
  return ApplicationSet(std::move(graphs));
}

TEST(ApplicationSet, Counts) {
  const ApplicationSet apps = make_set();
  EXPECT_EQ(apps.graph_count(), 3u);
  EXPECT_EQ(apps.task_count(), 9u);
}

TEST(ApplicationSet, FlatIndexingRoundTrips) {
  const ApplicationSet apps = make_set();
  for (std::size_t i = 0; i < apps.task_count(); ++i) {
    const TaskRef ref = apps.task_ref(i);
    EXPECT_EQ(apps.flat_index(ref), i);
  }
}

TEST(ApplicationSet, FlatOrderIsGraphMajor) {
  const ApplicationSet apps = make_set();
  EXPECT_EQ(apps.task_ref(0), (TaskRef{0, 0}));
  EXPECT_EQ(apps.task_ref(2), (TaskRef{0, 2}));
  EXPECT_EQ(apps.task_ref(3), (TaskRef{1, 0}));
  EXPECT_EQ(apps.task_ref(5), (TaskRef{2, 0}));
  EXPECT_EQ(apps.task_ref(8), (TaskRef{2, 3}));
}

TEST(ApplicationSet, FlatIndexValidation) {
  const ApplicationSet apps = make_set();
  EXPECT_THROW(apps.flat_index(TaskRef{5, 0}), std::out_of_range);
  EXPECT_THROW(apps.flat_index(TaskRef{0, 9}), std::out_of_range);
}

TEST(ApplicationSet, Hyperperiod) {
  const ApplicationSet apps = make_set();
  EXPECT_EQ(apps.hyperperiod(), 200);
}

TEST(ApplicationSet, CriticalityPartition) {
  const ApplicationSet apps = make_set();
  EXPECT_EQ(apps.droppable_graphs(), std::vector<GraphId>{GraphId{1}});
  EXPECT_EQ(apps.critical_graphs(),
            (std::vector<GraphId>{GraphId{0}, GraphId{2}}));
}

TEST(ApplicationSet, FindGraph) {
  const ApplicationSet apps = make_set();
  EXPECT_EQ(apps.find_graph("b"), GraphId{1});
  EXPECT_THROW(apps.find_graph("nope"), std::out_of_range);
}

TEST(ApplicationSet, TaskLookup) {
  const ApplicationSet apps = make_set();
  EXPECT_EQ(apps.task(TaskRef{1, 1}).name, "b_t1");
}

TEST(ApplicationSet, RejectsEmpty) {
  EXPECT_THROW(ApplicationSet({}), std::invalid_argument);
}

TEST(ApplicationSet, RejectsDuplicateGraphNames) {
  std::vector<TaskGraph> graphs;
  graphs.push_back(make_graph("same", 2, 100, false));
  graphs.push_back(make_graph("same", 2, 100, true));
  EXPECT_THROW(ApplicationSet(std::move(graphs)), std::invalid_argument);
}

}  // namespace
