#include "ftmc/model/architecture.hpp"

#include <gtest/gtest.h>

namespace {

using ftmc::model::Architecture;
using ftmc::model::ArchitectureBuilder;
using ftmc::model::Processor;
using ftmc::model::ProcessorId;

Processor pe(const std::string& name) {
  return Processor{name, 0, 10.0, 20.0, 1e-9, 1.0};
}

TEST(Architecture, BasicConstruction) {
  const Architecture arch({pe("a"), pe("b")}, 4.0);
  EXPECT_EQ(arch.processor_count(), 2u);
  EXPECT_EQ(arch.processor(ProcessorId{0}).name, "a");
  EXPECT_EQ(arch.processor(ProcessorId{1}).name, "b");
  EXPECT_DOUBLE_EQ(arch.bandwidth(), 4.0);
}

TEST(Architecture, RejectsEmpty) {
  EXPECT_THROW(Architecture({}, 1.0), std::invalid_argument);
}

TEST(Architecture, RejectsBadBandwidth) {
  EXPECT_THROW(Architecture({pe("a")}, 0.0), std::invalid_argument);
  EXPECT_THROW(Architecture({pe("a")}, -1.0), std::invalid_argument);
}

TEST(Architecture, RejectsDuplicateNames) {
  EXPECT_THROW(Architecture({pe("a"), pe("a")}, 1.0), std::invalid_argument);
}

TEST(Architecture, RejectsUnnamedProcessor) {
  EXPECT_THROW(Architecture({pe("")}, 1.0), std::invalid_argument);
}

TEST(Architecture, RejectsNegativePower) {
  Processor bad = pe("a");
  bad.static_power = -1.0;
  EXPECT_THROW(Architecture({bad}, 1.0), std::invalid_argument);
  bad = pe("a");
  bad.dynamic_power = -0.5;
  EXPECT_THROW(Architecture({bad}, 1.0), std::invalid_argument);
}

TEST(Architecture, RejectsNegativeFaultRate) {
  Processor bad = pe("a");
  bad.fault_rate = -1e-9;
  EXPECT_THROW(Architecture({bad}, 1.0), std::invalid_argument);
}

TEST(Architecture, RejectsNonPositiveSpeed) {
  Processor bad = pe("a");
  bad.speed_factor = 0.0;
  EXPECT_THROW(Architecture({bad}, 1.0), std::invalid_argument);
}

TEST(Architecture, ProcessorOutOfRangeThrows) {
  const Architecture arch({pe("a")}, 1.0);
  EXPECT_THROW(arch.processor(ProcessorId{1}), std::out_of_range);
}

TEST(Architecture, TransferTimeRoundsUp) {
  const Architecture arch({pe("a"), pe("b")}, 4.0);
  EXPECT_EQ(arch.transfer_time(0), 0);
  EXPECT_EQ(arch.transfer_time(1), 1);   // ceil(1/4)
  EXPECT_EQ(arch.transfer_time(4), 1);
  EXPECT_EQ(arch.transfer_time(5), 2);
  EXPECT_EQ(arch.transfer_time(400), 100);
}

TEST(ArchitectureBuilder, AddsPrototypesWithSuffixes) {
  const Architecture arch =
      ArchitectureBuilder{}.add_processors(pe("core"), 3).bandwidth(2.0).build();
  EXPECT_EQ(arch.processor_count(), 3u);
  EXPECT_EQ(arch.processor(ProcessorId{0}).name, "core_0");
  EXPECT_EQ(arch.processor(ProcessorId{2}).name, "core_2");
}

TEST(ArchitectureBuilder, MixedAdds) {
  const Architecture arch = ArchitectureBuilder{}
                                .add_processor(pe("x"))
                                .add_processors(pe("y"), 2)
                                .build();
  EXPECT_EQ(arch.processor_count(), 3u);
  EXPECT_EQ(arch.processor(ProcessorId{1}).name, "y_0");
}

}  // namespace
