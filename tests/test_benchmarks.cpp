#include <gtest/gtest.h>

#include "ftmc/benchmarks/cruise.hpp"
#include "ftmc/benchmarks/dream.hpp"
#include "ftmc/benchmarks/platforms.hpp"
#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/sched/holistic.hpp"

namespace {

using namespace ftmc;
using benchmarks::Benchmark;

TEST(Platforms, SymmetricPlatform) {
  const auto arch = benchmarks::symmetric_platform(4);
  EXPECT_EQ(arch.processor_count(), 4u);
  for (std::uint32_t p = 0; p < 4; ++p) {
    const auto& pe = arch.processor(model::ProcessorId{p});
    EXPECT_GT(pe.static_power, 0.0);
    EXPECT_GT(pe.fault_rate, 0.0);
  }
}

TEST(Platforms, AutomotiveIsHeterogeneous) {
  const auto arch = benchmarks::automotive_platform();
  EXPECT_EQ(arch.processor_count(), 4u);
  // Lockstep cores are more reliable than the eco core.
  EXPECT_LT(arch.processor(model::ProcessorId{0}).fault_rate,
            arch.processor(model::ProcessorId{3}).fault_rate);
  // Eco core is slower.
  EXPECT_GT(arch.processor(model::ProcessorId{3}).speed_factor,
            arch.processor(model::ProcessorId{0}).speed_factor);
}

TEST(Cruise, HasExpectedStructure) {
  const Benchmark cruise = benchmarks::cruise_benchmark();
  EXPECT_EQ(cruise.name, "Cruise");
  EXPECT_EQ(cruise.apps.graph_count(), 5u);
  EXPECT_EQ(cruise.apps.critical_graphs().size(), 2u);
  EXPECT_EQ(cruise.apps.droppable_graphs().size(), 3u);
  EXPECT_EQ(cruise.apps.task_count(), 18u);
  // The two control applications of Table 2.
  EXPECT_NO_THROW(cruise.apps.find_graph("speed_ctrl"));
  EXPECT_NO_THROW(cruise.apps.find_graph("brake_mon"));
}

TEST(Cruise, SampleConfigsAreStructurallySound) {
  const Benchmark cruise = benchmarks::cruise_benchmark();
  const auto configs = benchmarks::cruise_sample_configs(cruise);
  ASSERT_EQ(configs.size(), 3u);
  const sched::HolisticAnalysis backend;
  const core::Evaluator evaluator(cruise.arch, cruise.apps, backend);
  for (const auto& config : configs) {
    EXPECT_TRUE(evaluator.structural_error(config.candidate).empty())
        << config.name;
    // All droppable applications are in T_d for Table 2.
    EXPECT_FALSE(config.candidate.drop[0]);
    EXPECT_FALSE(config.candidate.drop[1]);
    EXPECT_TRUE(config.candidate.drop[2]);
    EXPECT_TRUE(config.candidate.drop[3]);
    EXPECT_TRUE(config.candidate.drop[4]);
  }
  // The three mappings differ.
  EXPECT_NE(configs[0].candidate.base_mapping,
            configs[1].candidate.base_mapping);
  EXPECT_NE(configs[1].candidate.base_mapping,
            configs[2].candidate.base_mapping);
}

TEST(Cruise, SampleConfigsContainTriggers) {
  const Benchmark cruise = benchmarks::cruise_benchmark();
  const auto configs = benchmarks::cruise_sample_configs(cruise);
  std::size_t reexec = 0, passive = 0;
  for (const auto& decision : configs[0].candidate.plan) {
    if (decision.technique == hardening::Technique::kReexecution) ++reexec;
    if (decision.technique == hardening::Technique::kPassiveReplication)
      ++passive;
  }
  EXPECT_GE(reexec, 8u);
  EXPECT_EQ(passive, 1u);
}

TEST(DtMed, MatchesFigure5Setup) {
  const Benchmark bench = benchmarks::dt_med_benchmark();
  EXPECT_EQ(bench.apps.droppable_graphs().size(), 3u);  // t1, t2, t3
  EXPECT_EQ(bench.apps.critical_graphs().size(), 3u);
  // Distinct service values -> distinct Pareto service levels.
  double t1 = bench.apps.graph(bench.apps.find_graph("t1")).service_value();
  double t2 = bench.apps.graph(bench.apps.find_graph("t2")).service_value();
  double t3 = bench.apps.graph(bench.apps.find_graph("t3")).service_value();
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
}

TEST(DtLarge, IsLargerThanDtMed) {
  const Benchmark med = benchmarks::dt_med_benchmark();
  const Benchmark large = benchmarks::dt_large_benchmark();
  EXPECT_GT(large.apps.task_count(), med.apps.task_count());
  EXPECT_GT(large.arch.processor_count(), med.arch.processor_count());
  EXPECT_GE(large.apps.droppable_graphs().size(), 4u);
}

TEST(DreamBenchmarks, PeriodsAreHarmonic) {
  for (const Benchmark& bench :
       {benchmarks::dt_med_benchmark(), benchmarks::dt_large_benchmark()}) {
    const model::Time hyper = bench.apps.hyperperiod();
    EXPECT_LE(hyper, 2000 * model::kMillisecond);
    for (const auto& graph : bench.apps.graphs())
      EXPECT_EQ(hyper % graph.period(), 0);
  }
}

TEST(Synth, DeterministicForFixedSeed) {
  benchmarks::SynthParams params;
  params.seed = 77;
  const auto a = benchmarks::synthetic_applications(params);
  const auto b = benchmarks::synthetic_applications(params);
  ASSERT_EQ(a.graph_count(), b.graph_count());
  ASSERT_EQ(a.task_count(), b.task_count());
  for (std::size_t i = 0; i < a.task_count(); ++i) {
    EXPECT_EQ(a.task(a.task_ref(i)).wcet, b.task(b.task_ref(i)).wcet);
    EXPECT_EQ(a.task(a.task_ref(i)).name, b.task(b.task_ref(i)).name);
  }
}

TEST(Synth, RespectsParameters) {
  benchmarks::SynthParams params;
  params.seed = 5;
  params.graph_count = 6;
  params.min_tasks = 3;
  params.max_tasks = 5;
  const auto apps = benchmarks::synthetic_applications(params);
  EXPECT_EQ(apps.graph_count(), 6u);
  for (const auto& graph : apps.graphs()) {
    EXPECT_GE(graph.task_count(), 3u);
    EXPECT_LE(graph.task_count(), 5u);
    // Utilization budget roughly respected (within rounding).
    EXPECT_LE(graph.total_wcet(),
              static_cast<model::Time>(
                  params.graph_utilization * 1.2 *
                  static_cast<double>(graph.period())) +
                  static_cast<model::Time>(graph.task_count()) * 1000);
  }
  // Graph 0 is always critical.
  EXPECT_FALSE(apps.graph(model::GraphId{0}).droppable());
}

TEST(Synth, GraphsAreConnectedDags) {
  benchmarks::SynthParams params;
  params.seed = 9;
  params.extra_edge_probability = 0.4;
  const auto apps = benchmarks::synthetic_applications(params);
  for (const auto& graph : apps.graphs()) {
    // Construction succeeded -> acyclic.  Connectivity: only task 0 may be
    // a source of the spine (extra edges never remove parents).
    EXPECT_EQ(graph.sources().size(), 1u);
    EXPECT_EQ(graph.sources()[0], 0u);
  }
}

TEST(Synth, PresetBenchmarks) {
  const Benchmark s1 = benchmarks::synth_benchmark(1);
  const Benchmark s2 = benchmarks::synth_benchmark(2);
  EXPECT_EQ(s1.name, "Synth-1");
  EXPECT_EQ(s2.name, "Synth-2");
  EXPECT_GT(s2.apps.task_count(), s1.apps.task_count());
  EXPECT_THROW(benchmarks::synth_benchmark(3), std::invalid_argument);
}

TEST(AllBenchmarks, FitOnTheirPlatforms) {
  // Sanity: total WCET utilization below the platform's aggregate capacity
  // (necessary for any feasible mapping to exist).
  for (const Benchmark& bench :
       {benchmarks::cruise_benchmark(), benchmarks::dt_med_benchmark(),
        benchmarks::dt_large_benchmark(), benchmarks::synth_benchmark(1),
        benchmarks::synth_benchmark(2)}) {
    double demand = 0.0;
    for (const auto& graph : bench.apps.graphs())
      demand += static_cast<double>(graph.total_wcet()) /
                static_cast<double>(graph.period());
    double capacity = 0.0;
    for (const auto& pe : bench.arch.processors())
      capacity += 1.0 / pe.speed_factor;
    EXPECT_LT(demand, capacity) << bench.name;
  }
}

}  // namespace
