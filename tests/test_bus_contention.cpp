// Tests for the shared-bus contention model (analysis + simulator) and
// their mutual consistency.
#include <gtest/gtest.h>

#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/core/exec_model.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/sim/simulator.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;

/// Two producer->consumer applications crossing between two PEs at the
/// same moment: without contention both transfers take `transfer` in
/// parallel; with contention they serialize on the bus.
struct CrossTraffic {
  model::Architecture arch = fixtures::test_arch(2, /*bandwidth=*/1.0);
  model::ApplicationSet apps = make_apps();
  hardening::HardenedSystem system = hardening::apply_hardening(
      apps, hardening::HardeningPlan(apps.task_count()),
      // a: PE0 -> PE1, b: PE1 -> PE0 — producers parallel, transfers
      // simultaneous, consumers on distinct PEs.
      {model::ProcessorId{0}, model::ProcessorId{1}, model::ProcessorId{1},
       model::ProcessorId{0}},
      2);
  std::vector<std::uint32_t> priorities =
      sched::assign_priorities(system.apps);

  static model::ApplicationSet make_apps() {
    std::vector<model::TaskGraph> graphs;
    // 100us transfer each (100 bytes at 1 byte/us).
    graphs.push_back(fixtures::chain_graph("a", 2, 50, 50, 1000, false, 1e-6,
                                           /*bytes=*/100));
    graphs.push_back(fixtures::chain_graph("b", 2, 50, 50, 1000, false, 1e-6,
                                           /*bytes=*/100));
    return model::ApplicationSet{std::move(graphs)};
  }
};

TEST(BusContentionSim, SimultaneousTransfersSerialize) {
  CrossTraffic rig;
  const sim::Simulator simulator(rig.arch, rig.system, {false, false},
                                 rig.priorities);
  sim::NoFaults no_faults;
  sim::WcetExecution wcet;

  sim::SimOptions plain;
  const auto without = simulator.run(no_faults, wcet, plain);
  // Producers a0/b0 run in parallel on their PEs [0,50]; transfers overlap:
  // consumers start at 150, finish 200.
  EXPECT_EQ(without.graph_response[0], 200);
  EXPECT_EQ(without.graph_response[1], 200);

  sim::SimOptions contended;
  contended.bus_contention = true;
  const auto with = simulator.run(no_faults, wcet, contended);
  // Bus serializes: a's message [50,150], b's [150,250] (a outranks via
  // graph order) -> b's consumer ends at 300.
  EXPECT_EQ(with.graph_response[0], 200);
  EXPECT_EQ(with.graph_response[1], 300);
  // Message jobs are internal: the public trace still has 4 jobs.
  EXPECT_EQ(with.jobs.size(), 4u);
  for (const auto& segment : with.segments)
    EXPECT_LT(segment.pe.value, rig.arch.processor_count());
}

TEST(BusContentionAnalysis, BoundsCoverSerialization) {
  CrossTraffic rig;
  std::vector<sched::ExecBounds> bounds;
  for (std::size_t i = 0; i < rig.system.apps.task_count(); ++i) {
    const auto& task = rig.system.apps.task(rig.system.apps.task_ref(i));
    bounds.push_back({task.bcet, task.wcet});
  }
  const sched::HolisticAnalysis plain_backend;
  sched::HolisticAnalysis::Options contended_options;
  contended_options.bus_contention = true;
  const sched::HolisticAnalysis contended_backend(contended_options);

  const auto plain = plain_backend.analyze(rig.arch, rig.system.apps,
                                           rig.system.mapping, bounds,
                                           rig.priorities);
  const auto contended = contended_backend.analyze(
      rig.arch, rig.system.apps, rig.system.mapping, bounds, rig.priorities);

  // Plain model lets both graphs finish at 200; contention pushes b.
  EXPECT_EQ(plain.graph_wcrt(rig.system.apps, model::GraphId{1}), 200);
  EXPECT_GE(contended.graph_wcrt(rig.system.apps, model::GraphId{1}), 300);
  // Contention never tightens a bound.
  for (std::uint32_t g = 0; g < 2; ++g)
    EXPECT_GE(contended.graph_wcrt(rig.system.apps, model::GraphId{g}),
              plain.graph_wcrt(rig.system.apps, model::GraphId{g}));
}

TEST(BusContentionSim, LocalChannelsBypassTheBus) {
  // Everything on one PE: contention option must change nothing.
  const auto apps = fixtures::small_mixed_apps();
  const auto arch = fixtures::test_arch(1);
  const auto system = hardening::apply_hardening(
      apps, hardening::HardeningPlan(apps.task_count()),
      std::vector<model::ProcessorId>(apps.task_count(),
                                      model::ProcessorId{0}),
      1);
  const auto priorities = sched::assign_priorities(system.apps);
  const sim::Simulator simulator(arch, system, {false, false}, priorities);
  sim::NoFaults no_faults;
  sim::WcetExecution wcet;
  sim::SimOptions contended;
  contended.bus_contention = true;
  const auto with = simulator.run(no_faults, wcet, contended);
  const auto without = simulator.run(no_faults, wcet);
  EXPECT_EQ(with.graph_response, without.graph_response);
}

// The safety relation must hold under contention too: Algorithm 1 with a
// contention-aware backend bounds every contention-aware simulation.
class ContentionSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContentionSafety, AnalysisBoundsSimulation) {
  const std::uint64_t seed = GetParam();
  benchmarks::SynthParams params;
  params.seed = seed + 900;
  params.graph_count = 3;
  params.min_tasks = 3;
  params.max_tasks = 5;
  params.max_channel_bytes = 512;
  const auto apps = benchmarks::synthetic_applications(params);
  const auto arch = fixtures::test_arch(3, /*bandwidth=*/0.05);  // slow bus

  util::Rng rng(seed);
  const dse::Decoder decoder(arch, apps);
  dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
  const auto candidate = decoder.decode(chromosome, rng);
  const auto system = hardening::apply_hardening(
      apps, candidate.plan, candidate.base_mapping, 3);
  const auto priorities = sched::assign_priorities(system.apps);

  sched::HolisticAnalysis::Options backend_options;
  backend_options.bus_contention = true;
  const sched::HolisticAnalysis backend(backend_options);
  const core::McAnalysis analysis(backend);
  const auto verdict = analysis.analyze(arch, system, candidate.drop);

  const sim::Simulator simulator(arch, system, candidate.drop, priorities);
  sim::SimOptions sim_options;
  sim_options.bus_contention = true;
  for (std::uint64_t profile = 0; profile < 40; ++profile) {
    util::Rng base(seed * 131 + profile);
    sim::RandomFaults faults(base.split(), 0.5);
    sim::UniformExecution durations(base.split());
    const auto trace = simulator.run(faults, durations, sim_options);
    for (std::uint32_t g = 0; g < system.apps.graph_count(); ++g) {
      if (candidate.drop[g] || trace.graph_response[g] < 0) continue;
      ASSERT_GE(verdict.graph_wcrt(system.apps, model::GraphId{g}),
                trace.graph_response[g])
          << "seed " << seed << " profile " << profile << " graph " << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContentionSafety,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
