// Tests for the `ftmc.ckpt.v1` checkpoint format, the GA's crash-safe
// resume guarantee, and the multi-seed Campaign driver (checkpoint.hpp /
// campaign.hpp).
//
// The headline guarantee under test: kill the GA at ANY generation
// boundary, resume from the snapshot, and the final archive and the
// trajectory fields of the per-generation telemetry are bitwise identical
// to the uninterrupted run.  Timing/cache-hit telemetry is explicitly
// excluded (resume restarts with a cold cache).
#include "ftmc/dse/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "ftmc/dse/campaign.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/file_io.hpp"
#include "ftmc/util/thread_pool.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using dse::Campaign;
using dse::CampaignOptions;
using dse::Checkpoint;
using dse::CheckpointError;
using dse::GaOptions;
using dse::GaResult;
using dse::GenerationStats;
using dse::GeneticOptimizer;
using dse::TrajectoryOptions;

GaOptions tiny_options() {
  GaOptions options;
  options.population = 10;
  options.offspring = 10;
  options.generations = 6;
  options.seed = 123;
  options.threads = 2;
  return options;
}

struct GaRig {
  model::Architecture arch = fixtures::test_arch(2);
  model::ApplicationSet apps = fixtures::small_mixed_apps();
  sched::HolisticAnalysis backend;
  GeneticOptimizer optimizer{arch, apps, backend};
};

/// Unique scratch path under gtest's per-run temp dir.
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "ftmc_ckpt_" + name;
}

void remove_rotation(const std::string& path, std::size_t keep = 8) {
  std::remove(path.c_str());
  for (std::size_t i = 1; i < keep; ++i)
    std::remove((path + "." + std::to_string(i)).c_str());
}

void expect_same_double(double a, double b) {
  if (std::isnan(a)) {
    EXPECT_TRUE(std::isnan(b));
  } else {
    EXPECT_EQ(a, b);
  }
}

/// The resume guarantee, spelled out: identical archive (genotype,
/// phenotype, objectives), identical Pareto front, identical run totals,
/// and identical trajectory fields of every history entry.  Cache and
/// timing telemetry are excluded by design.
void expect_same_trajectory(const GaResult& a, const GaResult& b) {
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.last_generation, b.last_generation);
  expect_same_double(a.best_feasible_power, b.best_feasible_power);
  ASSERT_EQ(a.archive.size(), b.archive.size());
  for (std::size_t i = 0; i < a.archive.size(); ++i) {
    EXPECT_EQ(a.archive[i].objectives, b.archive[i].objectives);
    EXPECT_EQ(a.archive[i].chromosome, b.archive[i].chromosome);
    EXPECT_EQ(a.archive[i].candidate, b.archive[i].candidate);
  }
  ASSERT_EQ(a.pareto.size(), b.pareto.size());
  for (std::size_t i = 0; i < a.pareto.size(); ++i)
    EXPECT_EQ(a.pareto[i].objectives, b.pareto[i].objectives);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].generation, b.history[i].generation);
    EXPECT_EQ(a.history[i].feasible_in_archive,
              b.history[i].feasible_in_archive);
    EXPECT_EQ(a.history[i].evaluations, b.history[i].evaluations);
    expect_same_double(a.history[i].best_feasible_power,
                       b.history[i].best_feasible_power);
  }
}

// --- Snapshot round-trip ----------------------------------------------------

TEST(CheckpointFormat, EncodeDecodeRoundTripOver20Seeds) {
  GaRig rig;
  const std::string path = temp_path("roundtrip");
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto options = tiny_options();
    options.population = 6;
    options.offspring = 6;
    options.generations = 1;
    options.seed = seed;
    options.checkpoint_path = path;
    options.checkpoint_keep = 1;
    (void)rig.optimizer.run(options);

    const Checkpoint loaded = dse::load_checkpoint(path);
    const std::vector<std::uint8_t> bytes = dse::encode_checkpoint(loaded);
    // Canonical encoding: decode(encode(decode(x))) produces the same
    // bytes, so the format has no hidden nondeterminism.
    const Checkpoint again = dse::decode_checkpoint(bytes);
    EXPECT_EQ(dse::encode_checkpoint(again), bytes) << "seed " << seed;

    EXPECT_EQ(loaded.options, TrajectoryOptions::of(options));
    EXPECT_EQ(loaded.generation, options.generations);
    EXPECT_NE(loaded.finished, 0);
    EXPECT_GT(loaded.evaluations, 0u);
    EXPECT_EQ(loaded.master, again.master);
    EXPECT_EQ(loaded.archive.size(), again.archive.size());
    EXPECT_EQ(loaded.history.size(), again.history.size());
  }
  remove_rotation(path);
}

// --- Resume == uninterrupted, killed at every boundary ----------------------

TEST(CheckpointResume, KillAtEveryBoundaryResumesBitwiseIdentical) {
  GaRig rig;
  auto options = tiny_options();
  options.generations = 10;
  const GaResult uninterrupted = rig.optimizer.run(options);

  const std::string path = temp_path("kill");
  for (std::size_t boundary = 0; boundary < options.generations;
       ++boundary) {
    remove_rotation(path);
    auto killed = options;
    killed.checkpoint_path = path;
    killed.checkpoint_keep = 1;
    bool past_boundary = false;
    killed.on_generation = [&](const GenerationStats& stats) {
      past_boundary = stats.generation >= boundary;
    };
    killed.stop_requested = [&]() { return past_boundary; };
    const GaResult partial = rig.optimizer.run(killed);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_EQ(partial.last_generation, boundary);

    const Checkpoint snapshot = dse::load_checkpoint(path);
    EXPECT_EQ(snapshot.generation, boundary);
    EXPECT_EQ(snapshot.finished, 0);

    auto resumed_options = options;
    resumed_options.resume = &snapshot;
    const GaResult resumed = rig.optimizer.run(resumed_options);
    EXPECT_FALSE(resumed.interrupted);
    expect_same_trajectory(uninterrupted, resumed);
  }
  remove_rotation(path);
}

// The WCRT-kernel throughput toggles (warm-start, scenario batching) live in
// the externally constructed backend, not in GaOptions: flipping them on
// resume must pass the TrajectoryOptions digest check AND land on the exact
// same trajectory, because warm/batched solves are bitwise-identical to
// cold scalar ones.
TEST(CheckpointResume, ResumeWithWarmStartAndBatchFlippedIsIdentical) {
  const model::Architecture arch = fixtures::test_arch(2);
  const model::ApplicationSet apps = fixtures::small_mixed_apps();
  sched::HolisticAnalysis::Options cold_options;
  cold_options.warm_start = false;
  cold_options.scenario_batch = 1;
  const sched::HolisticAnalysis cold_backend(cold_options);
  const sched::HolisticAnalysis warm_batch_backend;  // defaults: both on
  GeneticOptimizer cold(arch, apps, cold_backend);
  GeneticOptimizer warm(arch, apps, warm_batch_backend);

  auto options = tiny_options();
  const GaResult uninterrupted = cold.run(options);

  const std::string path = temp_path("kernel_flip");
  remove_rotation(path);
  auto killed = options;
  killed.checkpoint_path = path;
  killed.checkpoint_keep = 1;
  bool past_boundary = false;
  killed.on_generation = [&](const GenerationStats& stats) {
    past_boundary = stats.generation >= 3;
  };
  killed.stop_requested = [&]() { return past_boundary; };
  const GaResult partial = cold.run(killed);
  EXPECT_TRUE(partial.interrupted);

  const Checkpoint snapshot = dse::load_checkpoint(path);
  auto resumed_options = options;
  resumed_options.resume = &snapshot;
  // Cold run killed mid-way, resumed with warm-start + batching enabled:
  // no CheckpointError from the digest check, identical trajectory.
  const GaResult resumed = warm.run(resumed_options);
  EXPECT_FALSE(resumed.interrupted);
  expect_same_trajectory(uninterrupted, resumed);
  remove_rotation(path);
}

TEST(CheckpointResume, ReplaysRestoredTelemetryThenContinues) {
  GaRig rig;
  auto options = tiny_options();
  const std::string path = temp_path("replay");
  remove_rotation(path);

  auto killed = options;
  killed.checkpoint_path = path;
  bool past_boundary = false;
  killed.on_generation = [&](const GenerationStats& stats) {
    past_boundary = stats.generation >= 2;
  };
  killed.stop_requested = [&]() { return past_boundary; };
  (void)rig.optimizer.run(killed);

  const Checkpoint snapshot = dse::load_checkpoint(path);
  auto resumed_options = options;
  resumed_options.resume = &snapshot;
  std::vector<std::size_t> seen;
  resumed_options.on_generation = [&](const GenerationStats& stats) {
    seen.push_back(stats.generation);
  };
  (void)rig.optimizer.run(resumed_options);
  // Generations 0..2 are replayed from the snapshot's history, 3..6 run
  // live: one contiguous telemetry stream covering the whole run.
  ASSERT_EQ(seen.size(), options.generations + 1);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
  remove_rotation(path);
}

TEST(CheckpointResume, FinishedSnapshotReconstructsWithoutEvaluation) {
  GaRig rig;
  auto options = tiny_options();
  options.checkpoint_path = temp_path("finished");
  remove_rotation(options.checkpoint_path);
  const GaResult full = rig.optimizer.run(options);

  const Checkpoint snapshot = dse::load_checkpoint(options.checkpoint_path);
  EXPECT_NE(snapshot.finished, 0);
  auto resumed_options = options;
  resumed_options.checkpoint_path.clear();
  resumed_options.resume = &snapshot;
  const GaResult resumed = rig.optimizer.run(resumed_options);
  // No evaluation happens: the totals are the restored ones, bit-for-bit.
  expect_same_trajectory(full, resumed);
  remove_rotation(options.checkpoint_path);
}

// --- Rejection paths --------------------------------------------------------

/// A minimal but well-formed snapshot for byte-level tampering tests.
std::vector<std::uint8_t> valid_bytes() {
  Checkpoint snapshot;
  snapshot.options = TrajectoryOptions::of(tiny_options());
  snapshot.generation = 3;
  snapshot.evaluations = 70;
  snapshot.best_feasible_power = 12.5;
  snapshot.master = util::Rng(7).state();
  GenerationStats stats;
  stats.generation = 3;
  stats.evaluations = 10;
  snapshot.history.push_back(stats);
  return dse::encode_checkpoint(snapshot);
}

void expect_rejects(std::vector<std::uint8_t> bytes,
                    const std::string& needle) {
  try {
    (void)dse::decode_checkpoint(bytes);
    FAIL() << "expected CheckpointError containing '" << needle << "'";
  } catch (const CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << error.what();
  }
}

TEST(CheckpointFormat, RejectsBadMagic) {
  auto bytes = valid_bytes();
  bytes[0] = 'X';
  expect_rejects(std::move(bytes), "magic");
}

TEST(CheckpointFormat, RejectsUnknownVersion) {
  auto bytes = valid_bytes();
  bytes[8] = static_cast<std::uint8_t>(
      dse::kCheckpointVersion + 1);  // little-endian version field at offset 8
  expect_rejects(std::move(bytes), "version");
}

TEST(CheckpointFormat, RejectsTruncation) {
  const auto bytes = valid_bytes();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{31}, bytes.size() / 2,
        bytes.size() - 1}) {
    auto cut = bytes;
    cut.resize(keep);
    EXPECT_THROW((void)dse::decode_checkpoint(cut), CheckpointError)
        << "kept " << keep << " bytes";
  }
}

TEST(CheckpointFormat, RejectsPayloadCorruption) {
  auto bytes = valid_bytes();
  bytes[40] ^= 0xFF;  // inside the payload -> digest mismatch
  expect_rejects(std::move(bytes), "checksum");
}

TEST(CheckpointFormat, IgnoresTrailingBytes) {
  // Forward compatibility: newer writers may append extensions after the
  // digested payload; a v1 reader must not choke on them.
  auto bytes = valid_bytes();
  const Checkpoint base = dse::decode_checkpoint(bytes);
  bytes.insert(bytes.end(), {1, 2, 3, 4});
  const Checkpoint extended = dse::decode_checkpoint(bytes);
  EXPECT_EQ(base.generation, extended.generation);
  EXPECT_EQ(base.master, extended.master);
}

TEST(CheckpointFormat, LoadOfMissingFileIsCheckpointError) {
  EXPECT_THROW((void)dse::load_checkpoint(temp_path("does_not_exist")),
               CheckpointError);
}

TEST(CheckpointResume, OptionsMismatchNamesTheField) {
  GaRig rig;
  auto options = tiny_options();
  options.checkpoint_path = temp_path("mismatch");
  remove_rotation(options.checkpoint_path);
  (void)rig.optimizer.run(options);
  const Checkpoint snapshot = dse::load_checkpoint(options.checkpoint_path);

  auto divergent = options;
  divergent.seed = options.seed + 1;
  divergent.resume = &snapshot;
  try {
    (void)rig.optimizer.run(divergent);
    FAIL() << "expected CheckpointError naming 'seed'";
  } catch (const CheckpointError& error) {
    EXPECT_NE(std::string(error.what()).find("'seed'"), std::string::npos)
        << error.what();
  }

  // Trajectory-neutral knobs must NOT block a resume.
  auto retuned = options;
  retuned.threads = 1;
  retuned.cache_evaluations = false;
  retuned.checkpoint_path.clear();
  retuned.resume = &snapshot;
  EXPECT_NO_THROW((void)rig.optimizer.run(retuned));
  remove_rotation(options.checkpoint_path);
}

TEST(CheckpointFormat, TrajectoryMismatchReportsFirstDifferingField) {
  const TrajectoryOptions a = TrajectoryOptions::of(tiny_options());
  TrajectoryOptions b = a;
  EXPECT_EQ(a.mismatch(b), "");
  b.crossover_rate = a.crossover_rate + 0.125;
  EXPECT_EQ(a.mismatch(b), "variation.crossover_rate");
  EXPECT_NE(a.digest(), b.digest());
}

// --- Options validation -----------------------------------------------------

TEST(GaOptionsValidate, RejectsContradictoryKnobs) {
  GaRig rig;
  core::EvaluationCache cache;
  auto options = tiny_options();
  options.cache_evaluations = false;
  options.evaluator.cache = &cache;
  EXPECT_THROW(rig.optimizer.run(options), std::invalid_argument);

  util::ThreadPool pool(1);
  options = tiny_options();
  options.parallel_scenarios = false;
  options.evaluator.scenario_pool = &pool;
  EXPECT_THROW(rig.optimizer.run(options), std::invalid_argument);

  options = tiny_options();
  options.cache_capacity = 0;
  EXPECT_THROW(rig.optimizer.run(options), std::invalid_argument);

  options = tiny_options();
  options.checkpoint_path = temp_path("validate");
  options.checkpoint_every = 0;
  EXPECT_THROW(rig.optimizer.run(options), std::invalid_argument);
  options.checkpoint_every = 1;
  options.checkpoint_keep = 0;
  EXPECT_THROW(rig.optimizer.run(options), std::invalid_argument);
}

// --- Rotation ---------------------------------------------------------------

TEST(CheckpointPersistence, KeepLastKRotation) {
  GaRig rig;
  auto options = tiny_options();
  options.generations = 4;
  options.checkpoint_path = temp_path("rotate");
  options.checkpoint_keep = 3;
  remove_rotation(options.checkpoint_path);
  (void)rig.optimizer.run(options);

  // Newest at the base path, older generations shifted down; every slot
  // still decodes cleanly.
  std::uint64_t previous = dse::load_checkpoint(options.checkpoint_path)
                               .generation;
  EXPECT_EQ(previous, options.generations);
  for (std::size_t slot = 1; slot < options.checkpoint_keep; ++slot) {
    const std::string path =
        options.checkpoint_path + "." + std::to_string(slot);
    ASSERT_TRUE(util::file_exists(path));
    const Checkpoint older = dse::load_checkpoint(path);
    EXPECT_EQ(older.generation, previous - 1);
    previous = older.generation;
  }
  EXPECT_FALSE(util::file_exists(options.checkpoint_path + "." +
                                 std::to_string(options.checkpoint_keep)));
  remove_rotation(options.checkpoint_path);
}

// --- RngState ---------------------------------------------------------------

TEST(RngState, RestoreResumesExactSequence) {
  util::Rng rng(99);
  for (int i = 0; i < 17; ++i) (void)rng.index(1000);
  (void)rng.normal(0.0, 1.0);  // leave a cached Box-Muller half-pair
  const util::RngState state = rng.state();

  std::vector<double> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(rng.normal(0.0, 1.0));

  util::Rng other(1);  // different seed, fully overwritten by restore
  other.restore(state);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(other.normal(0.0, 1.0), expected[i]) << "draw " << i;
}

TEST(RngState, AllZeroStateIsRejected) {
  util::Rng rng(1);
  EXPECT_THROW(rng.restore(util::RngState{}), std::invalid_argument);
}

// --- Campaign ---------------------------------------------------------------

CampaignOptions campaign_options() {
  CampaignOptions options;
  options.ga = tiny_options();
  options.ga.generations = 4;
  options.seeds = {11, 22, 33};
  options.retry_backoff_seconds = 0.0;
  return options;
}

void expect_same_front(const std::vector<dse::Individual>& a,
                       const std::vector<dse::Individual>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].objectives, b[i].objectives);
    EXPECT_EQ(a[i].chromosome, b[i].chromosome);
  }
}

TEST(Campaign, SeedShardMergeIsDeterministic) {
  GaRig rig;
  const Campaign campaign(rig.arch, rig.apps, rig.backend);
  const auto options = campaign_options();
  const auto first = campaign.run(options);
  const auto second = campaign.run(options);

  ASSERT_EQ(first.shards.size(), options.seeds.size());
  for (std::size_t i = 0; i < first.shards.size(); ++i)
    EXPECT_EQ(first.shards[i].seed, options.seeds[i]);
  EXPECT_FALSE(first.interrupted);
  EXPECT_FALSE(first.budget_exhausted);
  EXPECT_FALSE(first.front.empty());
  expect_same_front(first.front, second.front);
  EXPECT_EQ(first.evaluations, second.evaluations);

  // The merged front is feasible and mutually non-dominated.
  for (const auto& a : first.front) {
    EXPECT_TRUE(a.evaluation.feasible());
    for (const auto& b : first.front)
      if (&a != &b) {
        EXPECT_FALSE(dse::dominates(a.objectives, b.objectives));
      }
  }
}

TEST(Campaign, RetryResumesFromCheckpointDeterministically) {
  GaRig rig;
  const Campaign campaign(rig.arch, rig.apps, rig.backend);

  auto clean = campaign_options();
  clean.seeds = {11};
  const auto reference = campaign.run(clean);

  // An evaluator-side failure surfaces as an exception from the shard's
  // run; one injected throw at the generation-2 boundary of the first
  // attempt must be absorbed by a retry that resumes the same trajectory.
  auto faulty = clean;
  faulty.checkpoint_path = temp_path("retry");
  remove_rotation(faulty.checkpoint_path);
  bool thrown = false;
  faulty.on_generation = [&](std::size_t, const GenerationStats& stats) {
    if (!thrown && stats.generation == 2) {
      thrown = true;
      throw std::runtime_error("injected transient evaluator failure");
    }
  };
  const auto recovered = campaign.run(faulty);
  ASSERT_EQ(recovered.shards.size(), 1u);
  EXPECT_EQ(recovered.shards[0].retries, 1u);
  expect_same_front(reference.front, recovered.front);
  EXPECT_EQ(reference.evaluations, recovered.evaluations);
  remove_rotation(faulty.checkpoint_path);

  // Without checkpointing the retry restarts from scratch — still the
  // same deterministic trajectory, still one recovered failure.
  auto no_ckpt = clean;
  thrown = false;
  no_ckpt.on_generation = faulty.on_generation;
  const auto restarted = campaign.run(no_ckpt);
  ASSERT_EQ(restarted.shards.size(), 1u);
  EXPECT_EQ(restarted.shards[0].retries, 1u);
  expect_same_front(reference.front, restarted.front);
}

TEST(Campaign, ExhaustedRetriesPropagateTheFailure) {
  GaRig rig;
  const Campaign campaign(rig.arch, rig.apps, rig.backend);
  auto options = campaign_options();
  options.seeds = {11};
  options.max_retries = 1;
  options.on_generation = [](std::size_t, const GenerationStats&) {
    throw std::runtime_error("persistent failure");
  };
  EXPECT_THROW((void)campaign.run(options), std::runtime_error);
}

TEST(Campaign, ConfigurationErrorsAreNeverRetried) {
  GaRig rig;
  const Campaign campaign(rig.arch, rig.apps, rig.backend);
  auto options = campaign_options();
  options.ga.population = 0;  // invalid_argument from validate()
  options.max_retries = 5;
  EXPECT_THROW((void)campaign.run(options), std::invalid_argument);
}

TEST(Campaign, EvaluationBudgetStopsAtBoundary) {
  GaRig rig;
  const Campaign campaign(rig.arch, rig.apps, rig.backend);
  auto options = campaign_options();
  options.max_evaluations = 1;  // hit right after the first batch
  const auto result = campaign.run(options);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_FALSE(result.interrupted);
  ASSERT_EQ(result.shards.size(), 1u);
  EXPECT_TRUE(result.shards[0].result.interrupted);
  EXPECT_EQ(result.shards[0].result.last_generation, 0u);
}

TEST(Campaign, ResumeContinuesInterruptedShards) {
  GaRig rig;
  const Campaign campaign(rig.arch, rig.apps, rig.backend);

  auto uninterrupted = campaign_options();
  const auto reference = campaign.run(uninterrupted);

  auto first_leg = campaign_options();
  first_leg.checkpoint_path = temp_path("campaign_resume");
  const std::size_t shard_count = first_leg.seeds.size();
  for (std::size_t i = 0; i < shard_count; ++i)
    remove_rotation(
        dse::shard_checkpoint_path(first_leg.checkpoint_path, i,
                                   shard_count));
  // Interrupt partway through: generation boundaries across all shards.
  std::size_t boundaries = 0;
  first_leg.on_generation = [&](std::size_t, const GenerationStats&) {
    ++boundaries;
  };
  first_leg.stop_requested = [&]() { return boundaries > 6; };
  const auto partial = campaign.run(first_leg);
  EXPECT_TRUE(partial.interrupted);
  EXPECT_LT(partial.shards.size(), shard_count);

  auto second_leg = first_leg;
  second_leg.on_generation = nullptr;
  second_leg.stop_requested = nullptr;
  second_leg.resume = true;
  const auto resumed = campaign.run(second_leg);
  EXPECT_FALSE(resumed.interrupted);
  ASSERT_EQ(resumed.shards.size(), shard_count);
  EXPECT_TRUE(resumed.shards[0].resumed);
  expect_same_front(reference.front, resumed.front);
  EXPECT_EQ(reference.evaluations, resumed.evaluations);
  for (std::size_t i = 0; i < shard_count; ++i)
    remove_rotation(
        dse::shard_checkpoint_path(first_leg.checkpoint_path, i,
                                   shard_count));
}

TEST(Campaign, ShardCheckpointPaths) {
  EXPECT_EQ(dse::shard_checkpoint_path("", 0, 3), "");
  EXPECT_EQ(dse::shard_checkpoint_path("run.ckpt", 0, 1), "run.ckpt");
  EXPECT_EQ(dse::shard_checkpoint_path("run.ckpt", 0, 3), "run.ckpt.s0");
  EXPECT_EQ(dse::shard_checkpoint_path("run.ckpt", 2, 3), "run.ckpt.s2");
}

}  // namespace
