#include "ftmc/dse/chromosome.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace {

using namespace ftmc;
using dse::Chromosome;
using dse::ChromosomeShape;
using dse::random_chromosome;
using dse::shape_ok;
using dse::TechniqueGene;

ChromosomeShape shape_of(std::size_t pes, std::size_t graphs,
                         std::size_t tasks) {
  return ChromosomeShape{pes, graphs, tasks, {}, {}};
}

TEST(Chromosome, ShapeOfMatchesProblem) {
  const auto arch = fixtures::test_arch(3);
  const auto apps = fixtures::small_mixed_apps();
  const auto shape = ChromosomeShape::of(arch, apps);
  EXPECT_EQ(shape.processors, 3u);
  EXPECT_EQ(shape.graphs, 2u);
  EXPECT_EQ(shape.tasks, 4u);
}

TEST(Chromosome, RandomChromosomeIsWellFormed) {
  const auto shape = shape_of(4, 3, 20);
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Chromosome chromosome = random_chromosome(shape, rng);
    EXPECT_TRUE(shape_ok(chromosome, shape));
  }
}

TEST(Chromosome, RandomChromosomeUsesAllTechniquesEventually) {
  const auto shape = shape_of(4, 2, 10);
  util::Rng rng(2);
  bool seen[4] = {false, false, false, false};
  for (int i = 0; i < 100; ++i) {
    const Chromosome chromosome = random_chromosome(shape, rng);
    for (const auto& genes : chromosome.tasks)
      seen[static_cast<int>(genes.technique)] = true;
  }
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_TRUE(seen[3]);
}

TEST(Chromosome, ShapeOkCatchesSizeMismatches) {
  const auto shape = shape_of(2, 2, 3);
  util::Rng rng(3);
  Chromosome chromosome = random_chromosome(shape, rng);
  EXPECT_TRUE(shape_ok(chromosome, shape));

  auto broken = chromosome;
  broken.allocation.pop_back();
  EXPECT_FALSE(shape_ok(broken, shape));

  broken = chromosome;
  broken.keep.push_back(1);
  EXPECT_FALSE(shape_ok(broken, shape));

  broken = chromosome;
  broken.tasks.pop_back();
  EXPECT_FALSE(shape_ok(broken, shape));
}

TEST(Chromosome, ShapeOkCatchesGeneRangeViolations) {
  const auto shape = shape_of(2, 2, 3);
  util::Rng rng(4);
  const Chromosome chromosome = random_chromosome(shape, rng);

  auto broken = chromosome;
  broken.allocation[0] = 2;
  EXPECT_FALSE(shape_ok(broken, shape));

  broken = chromosome;
  broken.tasks[0].base_pe = 2;
  EXPECT_FALSE(shape_ok(broken, shape));

  broken = chromosome;
  broken.tasks[0].replica_pe[1] = 7;
  EXPECT_FALSE(shape_ok(broken, shape));

  broken = chromosome;
  broken.tasks[0].voter_pe = 2;
  EXPECT_FALSE(shape_ok(broken, shape));

  broken = chromosome;
  broken.tasks[0].reexec = 0;
  EXPECT_FALSE(shape_ok(broken, shape));

  broken = chromosome;
  broken.tasks[0].reexec = dse::kMaxReexecGene + 1;
  EXPECT_FALSE(shape_ok(broken, shape));

  broken = chromosome;
  broken.tasks[0].active_n = 1;
  EXPECT_FALSE(shape_ok(broken, shape));

  broken = chromosome;
  broken.tasks[0].active_n = dse::kReplicaSlots + 1;
  EXPECT_FALSE(shape_ok(broken, shape));
}

TEST(Chromosome, DeterministicGeneration) {
  const auto shape = shape_of(3, 2, 8);
  util::Rng a(42), b(42);
  EXPECT_EQ(random_chromosome(shape, a), random_chromosome(shape, b));
}

}  // namespace
