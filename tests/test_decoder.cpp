#include "ftmc/dse/decoder.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace {

using namespace ftmc;
using dse::Chromosome;
using dse::Decoder;
using dse::random_chromosome;
using dse::TechniqueGene;
using hardening::Technique;

TEST(Decoder, EmptyAllocationIsRepaired) {
  const auto arch = fixtures::test_arch(3);
  const auto apps = fixtures::small_mixed_apps();
  const Decoder decoder(arch, apps);
  util::Rng rng(1);
  Chromosome chromosome = random_chromosome(decoder.shape(), rng);
  std::fill(chromosome.allocation.begin(), chromosome.allocation.end(),
            std::uint8_t{0});
  const auto candidate = decoder.decode(chromosome, rng);
  std::size_t allocated = 0;
  for (bool bit : candidate.allocation) allocated += bit ? 1 : 0;
  EXPECT_GE(allocated, 1u);
}

TEST(Decoder, TasksLandOnAllocatedPes) {
  const auto arch = fixtures::test_arch(4);
  const auto apps = fixtures::small_mixed_apps();
  const Decoder decoder(arch, apps);
  util::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    Chromosome chromosome = random_chromosome(decoder.shape(), rng);
    const auto candidate = decoder.decode(chromosome, rng);
    for (const auto pe : candidate.base_mapping)
      EXPECT_TRUE(candidate.allocation[pe.value]);
    for (const auto& decision : candidate.plan) {
      for (const auto pe : decision.replica_pes)
        EXPECT_TRUE(candidate.allocation[pe.value]);
      if (decision.technique == Technique::kActiveReplication ||
          decision.technique == Technique::kPassiveReplication) {
        EXPECT_TRUE(candidate.allocation[decision.voter_pe.value]);
      }
    }
  }
}

TEST(Decoder, ReplicationWithoutVoterFallsBackToReexecution) {
  const auto arch = fixtures::test_arch(3);
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("g", 2, 10, 20, 1000, false, 1e-6,
                                         /*bytes=*/0, /*ve=*/0));
  const model::ApplicationSet apps{std::move(graphs)};
  const Decoder decoder(arch, apps);
  util::Rng rng(3);
  Chromosome chromosome = random_chromosome(decoder.shape(), rng);
  for (auto& genes : chromosome.tasks)
    genes.technique = TechniqueGene::kActive;
  const auto candidate = decoder.decode(chromosome, rng);
  for (const auto& decision : candidate.plan)
    EXPECT_NE(decision.technique, Technique::kActiveReplication);
}

TEST(Decoder, ReplicasSpreadOverDistinctPes) {
  const auto arch = fixtures::test_arch(4);
  const auto apps = fixtures::small_mixed_apps();
  const Decoder decoder(arch, apps);
  util::Rng rng(4);
  Chromosome chromosome = random_chromosome(decoder.shape(), rng);
  std::fill(chromosome.allocation.begin(), chromosome.allocation.end(),
            std::uint8_t{1});
  chromosome.tasks[0].technique = TechniqueGene::kPassive;
  chromosome.tasks[0].replica_pe = {0, 0, 0};
  const auto candidate = decoder.decode(chromosome, rng);
  const auto& pes = candidate.plan[0].replica_pes;
  ASSERT_EQ(pes.size(), 3u);
  EXPECT_NE(pes[0], pes[1]);
  EXPECT_NE(pes[0], pes[2]);
  EXPECT_NE(pes[1], pes[2]);
}

TEST(Decoder, DuplicatesRemainWhenAllocationTooSmall) {
  const auto arch = fixtures::test_arch(2);
  const auto apps = fixtures::small_mixed_apps();
  const Decoder decoder(arch, apps);
  util::Rng rng(5);
  Chromosome chromosome = random_chromosome(decoder.shape(), rng);
  chromosome.allocation = {1, 1};
  chromosome.tasks[0].technique = TechniqueGene::kPassive;
  chromosome.tasks[0].replica_pe = {0, 0, 0};
  const auto candidate = decoder.decode(chromosome, rng);
  // Only two PEs exist; three replicas cannot all be distinct.
  EXPECT_EQ(candidate.plan[0].replica_pes.size(), 3u);
}

TEST(Decoder, DropSetRespectsKeepBitsAndDroppability) {
  const auto arch = fixtures::test_arch(2);
  const auto apps = fixtures::small_mixed_apps();  // graph 0 critical, 1 droppable
  const Decoder decoder(arch, apps);
  util::Rng rng(6);
  Chromosome chromosome = random_chromosome(decoder.shape(), rng);
  chromosome.keep = {0, 0};  // try to drop everything
  const auto candidate = decoder.decode(chromosome, rng);
  EXPECT_FALSE(candidate.drop[0]);  // critical graphs can never drop
  EXPECT_TRUE(candidate.drop[1]);
}

TEST(Decoder, NoDroppingOptionForcesKeep) {
  const auto arch = fixtures::test_arch(2);
  const auto apps = fixtures::small_mixed_apps();
  Decoder::Options options;
  options.allow_dropping = false;
  const Decoder decoder(arch, apps, options);
  util::Rng rng(7);
  Chromosome chromosome = random_chromosome(decoder.shape(), rng);
  chromosome.keep = {0, 0};
  const auto candidate = decoder.decode(chromosome, rng);
  EXPECT_FALSE(candidate.drop[0]);
  EXPECT_FALSE(candidate.drop[1]);
  // Lamarckian write-back.
  EXPECT_EQ(chromosome.keep[1], 1);
}

TEST(Decoder, ReliabilityRepairHardensTightGraphs) {
  const auto arch = fixtures::test_arch(3);
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("tight", 3, 50, 100, 1000, false, 1e-13));
  const model::ApplicationSet apps{std::move(graphs)};
  const Decoder decoder(arch, apps);
  util::Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    Chromosome chromosome = random_chromosome(decoder.shape(), rng);
    for (auto& genes : chromosome.tasks)
      genes.technique = TechniqueGene::kNone;
    const auto candidate = decoder.decode(chromosome, rng);
    const auto report = hardening::check_reliability(
        arch, apps, candidate.plan, candidate.base_mapping);
    EXPECT_TRUE(report.all_satisfied) << "trial " << trial;
  }
}

TEST(Decoder, ReexecutionOnlyRestrictionHolds) {
  const auto arch = fixtures::test_arch(3);
  const auto apps = fixtures::small_mixed_apps();
  Decoder::Options options;
  options.restriction = dse::TechniqueRestriction::kReexecutionOnly;
  const Decoder decoder(arch, apps, options);
  util::Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    Chromosome chromosome = random_chromosome(decoder.shape(), rng);
    const auto candidate = decoder.decode(chromosome, rng);
    for (const auto& decision : candidate.plan) {
      EXPECT_NE(decision.technique, Technique::kActiveReplication);
      EXPECT_NE(decision.technique, Technique::kPassiveReplication);
    }
  }
}

TEST(Decoder, ReplicationOnlyRestrictionHolds) {
  const auto arch = fixtures::test_arch(3);
  const auto apps = fixtures::small_mixed_apps();
  Decoder::Options options;
  options.restriction = dse::TechniqueRestriction::kReplicationOnly;
  const Decoder decoder(arch, apps, options);
  util::Rng rng(22);
  for (int trial = 0; trial < 30; ++trial) {
    Chromosome chromosome = random_chromosome(decoder.shape(), rng);
    const auto candidate = decoder.decode(chromosome, rng);
    for (const auto& decision : candidate.plan)
      EXPECT_NE(decision.technique, Technique::kReexecution);
  }
}

TEST(Decoder, RepairIsIdempotent) {
  // Decoding an already-repaired chromosome must not change the phenotype:
  // all repairs fire only on actual violations.
  const auto arch = fixtures::test_arch(3);
  const auto apps = fixtures::small_mixed_apps();
  const Decoder decoder(arch, apps);
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    Chromosome chromosome = random_chromosome(decoder.shape(), rng);
    const auto first = decoder.decode(chromosome, rng);
    Chromosome repaired = chromosome;
    const auto second = decoder.decode(repaired, rng);
    EXPECT_EQ(repaired, chromosome);
    EXPECT_EQ(second.base_mapping, first.base_mapping);
    EXPECT_EQ(second.drop, first.drop);
    EXPECT_EQ(second.plan, first.plan);
  }
}

TEST(Decoder, DecodeRejectsMalformedChromosome) {
  const auto arch = fixtures::test_arch(2);
  const auto apps = fixtures::small_mixed_apps();
  const Decoder decoder(arch, apps);
  util::Rng rng(9);
  Chromosome chromosome = random_chromosome(decoder.shape(), rng);
  chromosome.tasks.pop_back();
  EXPECT_THROW(decoder.decode(chromosome, rng), std::invalid_argument);
}

TEST(Decoder, TranslationMatchesGenes) {
  const auto arch = fixtures::test_arch(4);
  const auto apps = fixtures::small_mixed_apps();
  const Decoder decoder(arch, apps);
  util::Rng rng(10);
  Chromosome chromosome = random_chromosome(decoder.shape(), rng);
  std::fill(chromosome.allocation.begin(), chromosome.allocation.end(),
            std::uint8_t{1});
  chromosome.tasks[0].technique = TechniqueGene::kReexecution;
  chromosome.tasks[0].reexec = 3;
  chromosome.tasks[1].technique = TechniqueGene::kActive;
  chromosome.tasks[1].active_n = 2;
  chromosome.tasks[1].replica_pe = {1, 2, 3};
  chromosome.tasks[1].voter_pe = 0;
  chromosome.tasks[2].technique = TechniqueGene::kNone;
  chromosome.tasks[3].technique = TechniqueGene::kNone;
  const auto candidate = decoder.decode(chromosome, rng);
  EXPECT_EQ(candidate.plan[0].technique, Technique::kReexecution);
  EXPECT_EQ(candidate.plan[0].reexecutions, 3);
  EXPECT_EQ(candidate.plan[1].technique, Technique::kActiveReplication);
  ASSERT_EQ(candidate.plan[1].replica_pes.size(), 2u);
  EXPECT_EQ(candidate.plan[1].replica_pes[0].value, 1u);
  EXPECT_EQ(candidate.plan[1].replica_pes[1].value, 2u);
  EXPECT_EQ(candidate.plan[2].technique, Technique::kNone);
}

}  // namespace
