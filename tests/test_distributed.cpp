// Tests for the distributed campaign stack (src/ftmc/dist/): worker fleet
// lifecycle, the RemoteExecutor ↔ InProcessExecutor bitwise differential,
// crash resilience (SIGKILL a worker mid-campaign), the shared persistent
// evaluation store, and the PROTOCOL.md examples — every documented
// request/response pair is replayed verbatim against a live fixture
// server, so the protocol document cannot drift from the implementation.
//
// These tests fork/exec real `ftmc serve` worker processes from the built
// CLI binary (FTMC_BINARY, a compile definition set in CMakeLists.txt).
#include "ftmc/dist/remote_executor.hpp"
#include "ftmc/dist/worker.hpp"

#include <gtest/gtest.h>

#include <signal.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ftmc/dse/campaign.hpp"
#include "ftmc/dse/executor.hpp"
#include "ftmc/io/text_format.hpp"
#include "ftmc/obs/metrics.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/serve/json_parse.hpp"
#include "ftmc/serve/protocol.hpp"
#include "ftmc/serve/server.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using serve::JsonValue;
using serve::parse_json;

/// The standard fixture system, written where spawned workers can load it.
std::string write_demo_system(const std::string& name) {
  const model::Architecture arch = fixtures::test_arch(2);
  const model::ApplicationSet apps = fixtures::small_mixed_apps();
  const core::Candidate candidate = fixtures::plain_candidate(arch, apps);
  const std::string path =
      ::testing::TempDir() + "ftmc_dist_" + name + ".ftmc";
  std::ofstream out(path);
  io::write_system(out, arch, apps, &candidate);
  return path;
}

struct CampaignRig {
  model::Architecture arch = fixtures::test_arch(2);
  model::ApplicationSet apps = fixtures::small_mixed_apps();
  sched::HolisticAnalysis backend;
};

/// A small island campaign: two seeds, epochs of two generations.
dse::CampaignOptions island_options() {
  dse::CampaignOptions options;
  options.ga.population = 10;
  options.ga.offspring = 10;
  options.ga.generations = 6;
  options.ga.threads = 2;
  options.seeds = {11, 22};
  options.migration_every = 2;
  options.migration_size = 2;
  options.retry_backoff_seconds = 0.0;
  return options;
}

/// Remote evaluation for every island: one RemoteExecutor per attempt,
/// carrying the island's own campaign seed (the worker's content-seeded
/// decode must match the GA's).
void use_fleet(dse::CampaignOptions& options, dist::WorkerFleet& fleet,
               const std::string& system_path) {
  const std::vector<std::uint64_t> seeds = options.seeds;
  options.executor_factory = [&fleet, system_path,
                              seeds](std::size_t island) {
    return std::unique_ptr<dse::Executor>(
        std::make_unique<dist::RemoteExecutor>(
            fleet, fleet.assign(island), system_path,
            seeds[island % seeds.size()]));
  };
  options.parallel_islands = true;
}

void expect_same_front(const std::vector<dse::Individual>& a,
                       const std::vector<dse::Individual>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].objectives, b[i].objectives);
    EXPECT_EQ(a[i].chromosome, b[i].chromosome);
    EXPECT_EQ(a[i].evaluation.power, b[i].evaluation.power);
    EXPECT_EQ(a[i].evaluation.service, b[i].evaluation.service);
  }
}

// --- Worker fleet -----------------------------------------------------------

TEST(Fleet, RejectsNonsenseConfiguration) {
  // No workers at all.
  EXPECT_THROW(dist::WorkerFleet((dist::WorkerFleetOptions())),
               std::invalid_argument);
  // Spawning needs a system to serve.
  dist::WorkerFleetOptions spawn_only;
  spawn_only.spawn = 1;
  EXPECT_THROW(dist::WorkerFleet(std::move(spawn_only)),
               std::invalid_argument);
  // host:port typos fail the campaign instead of being retried.
  for (const char* endpoint : {"nonsense", ":1234", "host:", "host:0",
                               "host:99999"}) {
    dist::WorkerFleetOptions bad;
    bad.hosts = {endpoint};
    EXPECT_THROW(dist::WorkerFleet(std::move(bad)), std::invalid_argument)
        << endpoint;
  }
}

TEST(Fleet, SpawnsWorkersAndRoundTripsVersionedCalls) {
  const std::string path = write_demo_system("spawn");
  dist::WorkerFleetOptions options;
  options.ftmc_binary = FTMC_BINARY;
  options.system_path = path;
  options.spawn = 1;
  dist::WorkerFleet fleet(std::move(options));
  ASSERT_EQ(fleet.size(), 1u);
  EXPECT_GT(fleet.pid(0), 0);

  const std::string response = fleet.call(
      0, R"({"v": "ftmc.rpc.v1", "id": "t", "method": "ping"})");
  const JsonValue root = parse_json(response);
  EXPECT_TRUE(root.bool_or("ok", false)) << response;
  EXPECT_EQ(root.str_or("v", ""), serve::kRpcVersion);

  EXPECT_GE(obs::snapshot().value_of("dse.worker.spawns"), 1u);
  EXPECT_GE(obs::snapshot().value_of("dse.worker.calls"), 1u);
}

// --- Remote vs in-process differential --------------------------------------

TEST(Distributed, RemoteCampaignFrontIsBitwiseIdenticalToInProcess) {
  CampaignRig rig;
  const std::string path = write_demo_system("differential");
  const dse::Campaign campaign(rig.arch, rig.apps, rig.backend);

  dse::CampaignOptions local = island_options();
  const dse::CampaignResult in_process = campaign.run(local);
  ASSERT_FALSE(in_process.front.empty());
  EXPECT_GE(in_process.migration_epochs, 1u);

  dist::WorkerFleetOptions fleet_options;
  fleet_options.ftmc_binary = FTMC_BINARY;
  fleet_options.system_path = path;
  fleet_options.spawn = 2;
  dist::WorkerFleet fleet(std::move(fleet_options));
  dse::CampaignOptions remote = island_options();
  use_fleet(remote, fleet, path);
  const dse::CampaignResult distributed = campaign.run(remote);

  expect_same_front(in_process.front, distributed.front);
  EXPECT_EQ(in_process.evaluations, distributed.evaluations);
  EXPECT_EQ(in_process.migration_epochs, distributed.migration_epochs);
  EXPECT_EQ(in_process.migrants, distributed.migrants);
}

TEST(Distributed, SurvivesWorkerSigkillMidCampaign) {
  CampaignRig rig;
  const std::string path = write_demo_system("sigkill");
  const dse::Campaign campaign(rig.arch, rig.apps, rig.backend);

  dse::CampaignOptions reference = island_options();
  const dse::CampaignResult undisturbed = campaign.run(reference);
  ASSERT_FALSE(undisturbed.front.empty());

  dist::WorkerFleetOptions fleet_options;
  fleet_options.ftmc_binary = FTMC_BINARY;
  fleet_options.system_path = path;
  fleet_options.spawn = 2;
  dist::WorkerFleet fleet(std::move(fleet_options));

  dse::CampaignOptions killed_run = island_options();
  use_fleet(killed_run, fleet, path);
  std::atomic<bool> killed{false};
  killed_run.on_generation = [&](std::size_t island,
                                 const dse::GenerationStats& stats) {
    // SIGKILL island 0's worker mid-campaign, exactly once.  The kill lands
    // between generations, so the fleet waitpid-detects the corpse on the
    // island's next call and respawns it before the call goes out — the
    // campaign never sees a failure, it just keeps going.
    if (island == 0 && stats.generation == 3 &&
        !killed.exchange(true) && fleet.pid(0) > 0)
      ::kill(fleet.pid(0), SIGKILL);
  };
  const std::uint64_t lost_before =
      obs::snapshot().value_of("dse.worker.lost");
  const std::uint64_t respawns_before =
      obs::snapshot().value_of("dse.worker.respawns");
  const dse::CampaignResult survived = campaign.run(killed_run);

  EXPECT_TRUE(killed.load());
  expect_same_front(undisturbed.front, survived.front);
  EXPECT_EQ(undisturbed.evaluations, survived.evaluations);
  EXPECT_GE(obs::snapshot().value_of("dse.worker.lost"), lost_before + 1);
  EXPECT_GE(obs::snapshot().value_of("dse.worker.respawns"),
            respawns_before + 1);
}

/// Delegates to a real executor but fails one call with ExecutorError —
/// the transport failure a worker dying *mid-call* produces.
class FlakyExecutor final : public dse::Executor {
 public:
  FlakyExecutor(std::unique_ptr<dse::Executor> inner,
                std::atomic<bool>& tripped)
      : inner_(std::move(inner)), tripped_(&tripped) {}

  const char* name() const noexcept override { return "flaky"; }
  void evaluate(const std::vector<dse::EvalRequest>& requests,
                std::vector<dse::EvalOutcome>& outcomes) override {
    // Fail the third batch: past the first epoch, so the island retries
    // from a real snapshot rather than restarting from scratch.
    if (++calls_ == 3 && !tripped_->exchange(true))
      throw dse::ExecutorError("injected transport failure");
    inner_->evaluate(requests, outcomes);
  }

 private:
  std::unique_ptr<dse::Executor> inner_;
  std::atomic<bool>* tripped_;
  int calls_ = 0;
};

TEST(Distributed, RetriesIslandAfterMidCallTransportFailure) {
  CampaignRig rig;
  const std::string path = write_demo_system("retry");
  const dse::Campaign campaign(rig.arch, rig.apps, rig.backend);

  dse::CampaignOptions reference = island_options();
  const dse::CampaignResult undisturbed = campaign.run(reference);
  ASSERT_FALSE(undisturbed.front.empty());

  dist::WorkerFleetOptions fleet_options;
  fleet_options.ftmc_binary = FTMC_BINARY;
  fleet_options.system_path = path;
  fleet_options.spawn = 1;
  dist::WorkerFleet fleet(std::move(fleet_options));

  dse::CampaignOptions flaky_run = island_options();
  const std::vector<std::uint64_t> seeds = flaky_run.seeds;
  std::atomic<bool> tripped{false};
  flaky_run.executor_factory = [&](std::size_t island) {
    auto remote = std::make_unique<dist::RemoteExecutor>(
        fleet, fleet.assign(island), path, seeds[island % seeds.size()]);
    if (island == 0)
      return std::unique_ptr<dse::Executor>(
          std::make_unique<FlakyExecutor>(std::move(remote), tripped));
    return std::unique_ptr<dse::Executor>(std::move(remote));
  };
  flaky_run.parallel_islands = true;
  const std::uint64_t retries_before =
      obs::snapshot().value_of("dse.campaign.retries");
  const dse::CampaignResult survived = campaign.run(flaky_run);

  // The injected failure tripped, the island resumed from its snapshot on a
  // fresh executor, and the search trajectory was unaffected.
  EXPECT_TRUE(tripped.load());
  expect_same_front(undisturbed.front, survived.front);
  EXPECT_GE(obs::snapshot().value_of("dse.campaign.retries"),
            retries_before + 1);
  std::size_t retries = 0;
  for (const dse::ShardResult& shard : survived.shards)
    retries += shard.retries;
  EXPECT_GE(retries, 1u);
}

TEST(Distributed, WarmSharedStoreServesEverySecondRunEvaluation) {
  CampaignRig rig;
  const std::string path = write_demo_system("store");
  const std::string cache_dir = ::testing::TempDir() + "ftmc_dist_store";
  std::filesystem::remove_all(cache_dir);  // a previous run's store is warm
  const dse::Campaign campaign(rig.arch, rig.apps, rig.backend);

  auto run_with_fresh_fleet = [&]() {
    dist::WorkerFleetOptions fleet_options;
    fleet_options.ftmc_binary = FTMC_BINARY;
    fleet_options.system_path = path;
    fleet_options.spawn = 2;
    fleet_options.cache_dir = cache_dir;
    dist::WorkerFleet fleet(std::move(fleet_options));
    dse::CampaignOptions options = island_options();
    use_fleet(options, fleet, path);
    const dse::CampaignResult result = campaign.run(options);

    // Per-worker persistent-store traffic for this run (the workers are
    // freshly spawned, so their stats cover exactly this campaign).
    std::uint64_t appends = 0;
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      const JsonValue stats = parse_json(fleet.call(
          i, R"({"v": "ftmc.rpc.v1", "id": "s", "method": "stats"})"));
      EXPECT_TRUE(stats.bool_or("ok", false));
      const JsonValue* result = stats.get("result");
      const JsonValue* systems =
          result != nullptr ? result->get("systems") : nullptr;
      if (systems == nullptr || systems->array.size() != 1) {
        ADD_FAILURE() << "malformed stats response from worker " << i;
        continue;
      }
      const JsonValue* store = systems->array[0].get("store");
      if (store == nullptr) {
        ADD_FAILURE() << "worker " << i << " has no persistent store";
        continue;
      }
      appends += store->u64_or("appends", 0);
      hits += store->u64_or("hits", 0);
    }
    return std::tuple(result.front.size(), appends, hits);
  };

  const auto [cold_front, cold_appends, cold_hits] = run_with_fresh_fleet();
  EXPECT_GT(cold_front, 0u);
  EXPECT_GT(cold_appends, 0u);

  // Same campaign against fresh workers sharing the now-warm store: every
  // evaluation is served from it, nothing fresh is appended.
  const auto [warm_front, warm_appends, warm_hits] = run_with_fresh_fleet();
  EXPECT_EQ(warm_front, cold_front);
  EXPECT_EQ(warm_appends, 0u);
  EXPECT_GT(warm_hits, 0u);
}

// --- PROTOCOL.md ------------------------------------------------------------

/// Every ```json fence in PROTOCOL.md, in document order.
std::vector<std::string> protocol_json_blocks() {
  std::ifstream in(std::string(FTMC_SOURCE_DIR) + "/docs/PROTOCOL.md");
  EXPECT_TRUE(in.is_open()) << "docs/PROTOCOL.md not found";
  std::vector<std::string> blocks;
  std::string line;
  bool inside = false;
  std::string current;
  while (std::getline(in, line)) {
    if (!inside && line == "```json") {
      inside = true;
      current.clear();
    } else if (inside && line == "```") {
      inside = false;
      blocks.push_back(current);
    } else if (inside) {
      current += line;
      current += '\n';
    }
  }
  EXPECT_FALSE(inside) << "unterminated ```json fence";
  return blocks;
}

TEST(Protocol, DocumentedExamplesStayValid) {
  const std::string path = write_demo_system("protocol");
  serve::ServeOptions options;
  options.system_paths = {path};
  options.threads = 2;
  serve::Server server(std::move(options));

  const std::vector<std::string> blocks = protocol_json_blocks();
  ASSERT_GE(blocks.size(), 2u);
  std::size_t pairs = 0;
  std::string pending_request;
  for (const std::string& block : blocks) {
    const JsonValue value = parse_json(block);  // every example is valid JSON
    ASSERT_TRUE(value.is_object()) << block;
    if (value.get("ok") == nullptr) {
      // A request: the next block is its documented response.
      EXPECT_TRUE(pending_request.empty())
          << "two request examples in a row before: " << block;
      ASSERT_NE(value.get("method"), nullptr) << block;
      pending_request = block;
      continue;
    }
    ASSERT_FALSE(pending_request.empty())
        << "response example without a request before it: " << block;
    const std::string actual_text = server.handle(pending_request);
    pending_request.clear();
    ++pairs;
    const JsonValue actual = parse_json(actual_text);

    EXPECT_EQ(actual.bool_or("ok", false), value.bool_or("ok", false))
        << block << "\nactual: " << actual_text;
    EXPECT_EQ(actual.str_or("v", ""), serve::kRpcVersion) << actual_text;
    if (!value.bool_or("ok", false)) {
      const JsonValue* documented = value.get("error");
      const JsonValue* error = actual.get("error");
      ASSERT_NE(documented, nullptr) << block;
      ASSERT_NE(error, nullptr) << actual_text;
      EXPECT_EQ(error->str_or("code", ""), documented->str_or("code", ""))
          << block << "\nactual: " << actual_text;
      continue;
    }
    // Every documented result key must exist in the live response (values
    // may differ — timings, counts, and paths are illustrative).
    const JsonValue* documented = value.get("result");
    const JsonValue* result = actual.get("result");
    ASSERT_NE(documented, nullptr) << block;
    ASSERT_NE(result, nullptr) << actual_text;
    for (const auto& [key, unused] : documented->object)
      EXPECT_NE(result->get(key), nullptr)
          << "documented result key '" << key
          << "' missing from live response: " << actual_text;
  }
  // The document exercises the whole session: versioning, errors, every
  // method, and the drain.
  EXPECT_GE(pairs, 12u);
}

}  // namespace
