#include "ftmc/io/dot_export.hpp"

#include <gtest/gtest.h>

#include "ftmc/benchmarks/cruise.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;

TEST(DotExport, PlainApplicationsContainClustersAndEdges) {
  const auto apps = fixtures::small_mixed_apps();
  const std::string dot = io::to_dot(apps);
  EXPECT_NE(dot.find("digraph applications"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("crit0"), std::string::npos);
  EXPECT_NE(dot.find("g0_t0 -> g0_t1"), std::string::npos);
  // Droppable cluster dashed + annotated.
  EXPECT_NE(dot.find("droppable, sv 2"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotExport, HardenedViewShowsRolesAndPes) {
  const auto apps = fixtures::small_mixed_apps();
  hardening::HardeningPlan plan(apps.task_count());
  plan[0].technique = hardening::Technique::kPassiveReplication;
  plan[0].replica_pes = {model::ProcessorId{0}, model::ProcessorId{1},
                         model::ProcessorId{2}};
  plan[0].voter_pe = model::ProcessorId{0};
  plan[1].technique = hardening::Technique::kReexecution;
  plan[1].reexecutions = 2;
  const auto arch = fixtures::test_arch(3);
  std::vector<model::ProcessorId> mapping(apps.task_count(),
                                          model::ProcessorId{0});
  const auto system = hardening::apply_hardening(apps, plan, mapping, 3);
  const std::string dot = io::to_dot(arch, system);
  EXPECT_NE(dot.find("digraph hardened"), std::string::npos);
  EXPECT_NE(dot.find("reexec k=2"), std::string::npos);
  EXPECT_NE(dot.find("@pe0"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);  // voter
  EXPECT_NE(dot.find("fillcolor=lightyellow"), std::string::npos);  // standby
  EXPECT_NE(dot.find("[style=dashed]"), std::string::npos);  // control edge
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotExport, CruiseBenchmarkExportsCompletely) {
  const auto cruise = benchmarks::cruise_benchmark();
  const std::string dot = io::to_dot(cruise.apps);
  for (std::uint32_t g = 0; g < cruise.apps.graph_count(); ++g)
    EXPECT_NE(dot.find(cruise.apps.graph(model::GraphId{g}).name()),
              std::string::npos);
  // Every task appears as a node.
  for (std::size_t i = 0; i < cruise.apps.task_count(); ++i)
    EXPECT_NE(dot.find(cruise.apps.task(cruise.apps.task_ref(i)).name),
              std::string::npos);
}

}  // namespace
