// Tests for the persistent memory-mapped evaluation store (eval_store.hpp):
// round-trip and reopen persistence, index rebuilds, torn-tail crash
// recovery (including a real fork + SIGKILL), cross-process sharing, and
// the L1 (EvaluationCache) / L2 (EvalStore) flow through the Evaluator and
// the GA.
#include "ftmc/core/eval_store.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "ftmc/core/evaluation_cache.hpp"
#include "ftmc/dse/ga.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/file_io.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using core::Candidate;
using core::EvalStore;
using core::EvalStoreOptions;
using core::Evaluation;
using core::StoreError;

/// Fresh (pre-cleaned) store directory under gtest's temp dir: leftover
/// files from a previous run must not leak into this one.
std::string fresh_store_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ftmc_store_" + name;
  std::remove((dir + "/evals.log").c_str());
  std::remove((dir + "/evals.idx").c_str());
  ::rmdir(dir.c_str());
  return dir;
}

Candidate make_candidate(std::uint64_t variant) {
  const model::Architecture arch = fixtures::test_arch(3);
  const model::ApplicationSet apps = fixtures::small_mixed_apps();
  Candidate candidate = fixtures::plain_candidate(arch, apps);
  for (std::size_t i = 0; i < candidate.base_mapping.size(); ++i)
    candidate.base_mapping[i] = model::ProcessorId{static_cast<std::uint32_t>(
        (i + variant) % arch.processor_count())};
  candidate.drop[0] = (variant % 2) != 0;
  return candidate;
}

Evaluation make_evaluation(std::uint64_t variant) {
  Evaluation evaluation;
  evaluation.mapping_valid = true;
  evaluation.reliability_ok = (variant % 2) == 0;
  evaluation.normal_schedulable = true;
  evaluation.critical_schedulable = (variant % 3) != 0;
  evaluation.power = 100.0 + 0.5 * static_cast<double>(variant);
  evaluation.service = 1.0 / static_cast<double>(variant + 1);
  evaluation.scenario_count = 10 + variant;
  evaluation.scenario_solves = 20 + variant;
  evaluation.graph_wcrt = {static_cast<model::Time>(100 + variant),
                           static_cast<model::Time>(200 + variant)};
  return evaluation;
}

void expect_same_evaluation(const Evaluation& a, const Evaluation& b) {
  EXPECT_EQ(a.mapping_valid, b.mapping_valid);
  EXPECT_EQ(a.reliability_ok, b.reliability_ok);
  EXPECT_EQ(a.normal_schedulable, b.normal_schedulable);
  EXPECT_EQ(a.critical_schedulable, b.critical_schedulable);
  EXPECT_EQ(a.power, b.power);
  EXPECT_EQ(a.service, b.service);
  EXPECT_EQ(a.scenario_count, b.scenario_count);
  EXPECT_EQ(a.scenario_solves, b.scenario_solves);
  EXPECT_EQ(a.graph_wcrt, b.graph_wcrt);
}

std::uint64_t file_size(const std::string& path) {
  struct stat st {};
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<std::uint64_t>(st.st_size);
}

// --- Round-trip and persistence ---------------------------------------------

TEST(EvalStore, RoundTripWithinOneOpen) {
  const std::string dir = fresh_store_dir("roundtrip");
  EvalStore store(dir);
  for (std::uint64_t i = 0; i < 8; ++i)
    store.put(1000 + i, make_candidate(i), make_evaluation(i));
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto found = store.find(1000 + i, make_candidate(i));
    ASSERT_TRUE(found.has_value()) << i;
    expect_same_evaluation(*found, make_evaluation(i));
  }
  const auto stats = store.stats();
  EXPECT_EQ(stats.appends, 8u);
  EXPECT_EQ(stats.records, 8u);
  EXPECT_EQ(stats.hits, 8u);
}

TEST(EvalStore, SurvivesReopen) {
  const std::string dir = fresh_store_dir("reopen");
  {
    EvalStore store(dir);
    for (std::uint64_t i = 0; i < 5; ++i)
      store.put(i, make_candidate(i), make_evaluation(i));
  }  // destructor flushes (fsync + index rewrite)
  EvalStore reopened(dir);
  EXPECT_EQ(reopened.stats().records, 5u);
  EXPECT_GT(reopened.stats().bytes_mapped, 0u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto found = reopened.find(i, make_candidate(i));
    ASSERT_TRUE(found.has_value()) << i;
    expect_same_evaluation(*found, make_evaluation(i));
  }
}

TEST(EvalStore, HashCollisionDegradesToMiss) {
  const std::string dir = fresh_store_dir("collision");
  EvalStore store(dir);
  store.put(7, make_candidate(0), make_evaluation(0));
  // Same key, different candidate bytes: must be a miss, never the wrong
  // evaluation.
  EXPECT_FALSE(store.find(7, make_candidate(1)).has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_TRUE(store.find(7, make_candidate(0)).has_value());
}

TEST(EvalStore, DuplicatePutIsSkipped) {
  const std::string dir = fresh_store_dir("dup");
  EvalStore store(dir);
  store.put(3, make_candidate(0), make_evaluation(0));
  store.put(3, make_candidate(0), make_evaluation(0));
  EXPECT_EQ(store.stats().appends, 1u);
  EXPECT_EQ(store.stats().records, 1u);
}

TEST(EvalStore, ReadOnlyRejectsPut) {
  const std::string dir = fresh_store_dir("readonly");
  { EvalStore store(dir); store.put(1, make_candidate(1), make_evaluation(1)); }
  EvalStoreOptions options;
  options.read_only = true;
  EvalStore store(dir, options);
  EXPECT_TRUE(store.find(1, make_candidate(1)).has_value());
  EXPECT_THROW(store.put(2, make_candidate(2), make_evaluation(2)),
               StoreError);
}

// --- Index lifecycle --------------------------------------------------------

TEST(EvalStore, RebuildsIndexFromLogWhenMissing) {
  const std::string dir = fresh_store_dir("rebuild");
  {
    EvalStore store(dir);
    for (std::uint64_t i = 0; i < 6; ++i)
      store.put(i, make_candidate(i), make_evaluation(i));
  }
  ASSERT_EQ(std::remove((dir + "/evals.idx").c_str()), 0);
  EvalStore store(dir);
  EXPECT_GE(store.stats().index_rebuilds, 1u);
  EXPECT_EQ(store.stats().records, 6u);
  for (std::uint64_t i = 0; i < 6; ++i)
    EXPECT_TRUE(store.find(i, make_candidate(i)).has_value()) << i;
  // The rebuilt index was persisted: a third open needs no rebuild.
  EXPECT_TRUE(util::file_exists(dir + "/evals.idx"));
}

TEST(EvalStore, RejectsCorruptIndexMagicByRebuilding) {
  const std::string dir = fresh_store_dir("idxmagic");
  {
    EvalStore store(dir);
    store.put(9, make_candidate(9), make_evaluation(9));
  }
  // Stomp the index magic; the index is a pure cache of the log, so the
  // store must fall back to a rebuild instead of failing the open.
  std::FILE* f = std::fopen((dir + "/evals.idx").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fputs("BADMAGIC", f);
  std::fclose(f);
  EvalStore store(dir);
  EXPECT_GE(store.stats().index_rebuilds, 1u);
  EXPECT_TRUE(store.find(9, make_candidate(9)).has_value());
}

// --- Corruption and crash safety --------------------------------------------

TEST(EvalStore, BadLogMagicIsAStoreError) {
  const std::string dir = fresh_store_dir("logmagic");
  { EvalStore store(dir); store.put(1, make_candidate(1), make_evaluation(1)); }
  std::FILE* f = std::fopen((dir + "/evals.log").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTSTORE", f);
  std::fclose(f);
  EXPECT_THROW(EvalStore store(dir), StoreError);
}

TEST(EvalStore, TornTailTruncatedLoudlyByDefault) {
  const std::string dir = fresh_store_dir("torn");
  {
    EvalStore store(dir);
    for (std::uint64_t i = 0; i < 4; ++i)
      store.put(i, make_candidate(i), make_evaluation(i));
  }
  // Append half a record header: a crash mid-append tears exactly like this.
  const std::string log = dir + "/evals.log";
  std::FILE* f = std::fopen(log.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const std::uint8_t garbage[10] = {0xDE, 0xAD, 0xBE, 0xEF, 0xDE,
                                    0xAD, 0xBE, 0xEF, 0xDE, 0xAD};
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  const std::uint64_t torn_size = file_size(log);

  // The index still covers the pre-tear log, so force a full tail scan.
  ASSERT_EQ(std::remove((dir + "/evals.idx").c_str()), 0);

  EvalStore store(dir);
  EXPECT_EQ(store.stats().torn_bytes_discarded, sizeof(garbage));
  EXPECT_EQ(store.stats().records, 4u);
  EXPECT_LT(file_size(log), torn_size);  // tail truncated on disk
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_TRUE(store.find(i, make_candidate(i)).has_value()) << i;
}

TEST(EvalStore, StrictOpenRejectsTornTailWithStoreError) {
  const std::string dir = fresh_store_dir("strict");
  {
    EvalStore store(dir);
    store.put(1, make_candidate(1), make_evaluation(1));
  }
  std::FILE* f = std::fopen((dir + "/evals.log").c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("torn!", f);
  std::fclose(f);
  ASSERT_EQ(std::remove((dir + "/evals.idx").c_str()), 0);

  EvalStoreOptions options;
  options.strict_open = true;
  try {
    EvalStore store(dir, options);
    FAIL() << "strict_open accepted a torn log tail";
  } catch (const StoreError& error) {
    EXPECT_NE(std::string(error.what()).find("torn"), std::string::npos)
        << error.what();
  }
}

TEST(EvalStore, KillNineMidRunRecoversEveryFullRecord) {
  const std::string dir = fresh_store_dir("kill9");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: append records, then die without flush(), destructors, or an
    // index write — exactly what kill -9 during a campaign looks like.
    EvalStore store(dir);
    for (std::uint64_t i = 0; i < 7; ++i)
      store.put(i, make_candidate(i), make_evaluation(i));
    ::raise(SIGKILL);
    ::_exit(127);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // No index was ever written; reopen must recover all 7 from the log.
  EvalStore store(dir);
  EXPECT_EQ(store.stats().records, 7u);
  EXPECT_EQ(store.stats().torn_bytes_discarded, 0u);
  for (std::uint64_t i = 0; i < 7; ++i) {
    const auto found = store.find(i, make_candidate(i));
    ASSERT_TRUE(found.has_value()) << i;
    expect_same_evaluation(*found, make_evaluation(i));
  }
}

TEST(EvalStore, SecondProcessReadsWhatTheFirstWrote) {
  const std::string dir = fresh_store_dir("twoproc");
  EvalStore writer(dir);
  for (std::uint64_t i = 0; i < 5; ++i)
    writer.put(i, make_candidate(i), make_evaluation(i));
  writer.flush();

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: independent read-only open against the live store.
    int failures = 0;
    try {
      EvalStoreOptions options;
      options.read_only = true;
      EvalStore reader(dir, options);
      for (std::uint64_t i = 0; i < 5; ++i) {
        const auto found = reader.find(i, make_candidate(i));
        if (!found.has_value() || found->power != make_evaluation(i).power)
          ++failures;
      }
    } catch (...) {
      failures = 100;
    }
    ::_exit(failures);
  }
  // Parent keeps appending while the child reads.
  for (std::uint64_t i = 5; i < 10; ++i)
    writer.put(i, make_candidate(i), make_evaluation(i));
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(writer.stats().records, 10u);
}

// --- Evaluator L1/L2 flow ---------------------------------------------------

TEST(EvalStore, EvaluatorServesFromStoreAcrossInstances) {
  const std::string dir = fresh_store_dir("evaluator");
  const model::Architecture arch = fixtures::test_arch(3);
  const model::ApplicationSet apps = fixtures::small_mixed_apps();
  const sched::HolisticAnalysis backend;
  const Candidate candidate = fixtures::plain_candidate(arch, apps);

  Evaluation fresh;
  {
    EvalStore store(dir);
    core::Evaluator::Options options;
    options.store = &store;
    const core::Evaluator evaluator(arch, apps, backend, options);
    bool cache_hit = true;
    fresh = evaluator.evaluate(candidate, &cache_hit);
    EXPECT_FALSE(cache_hit);
    EXPECT_EQ(store.stats().appends, 1u);
  }

  // A brand-new process-equivalent: new store handle, new evaluator, no L1.
  EvalStore store(dir);
  core::Evaluator::Options options;
  options.store = &store;
  const core::Evaluator evaluator(arch, apps, backend, options);
  bool cache_hit = false;
  const Evaluation persisted = evaluator.evaluate(candidate, &cache_hit);
  EXPECT_TRUE(cache_hit);
  EXPECT_EQ(store.stats().hits, 1u);
  expect_same_evaluation(fresh, persisted);
  expect_same_evaluation(persisted, evaluator.evaluate_uncached(candidate));
}

TEST(EvalStore, StoreHitWarmsTheL1) {
  const std::string dir = fresh_store_dir("warml1");
  const model::Architecture arch = fixtures::test_arch(3);
  const model::ApplicationSet apps = fixtures::small_mixed_apps();
  const sched::HolisticAnalysis backend;
  const Candidate candidate = fixtures::plain_candidate(arch, apps);

  {
    EvalStore store(dir);
    core::Evaluator::Options options;
    options.store = &store;
    const core::Evaluator evaluator(arch, apps, backend, options);
    (void)evaluator.evaluate(candidate);
  }

  EvalStore store(dir);
  core::EvaluationCache cache;
  core::Evaluator::Options options;
  options.cache = &cache;
  options.store = &store;
  const core::Evaluator evaluator(arch, apps, backend, options);
  (void)evaluator.evaluate(candidate);  // L1 miss -> L2 hit, warms L1
  (void)evaluator.evaluate(candidate);  // L1 hit, store untouched
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(EvalStore, WarmStoreReplaysGaCampaignWithoutFreshEvaluations) {
  const std::string dir = fresh_store_dir("ga");
  const model::Architecture arch = fixtures::test_arch(2);
  const model::ApplicationSet apps = fixtures::small_mixed_apps();
  const sched::HolisticAnalysis backend;
  dse::GeneticOptimizer optimizer(arch, apps, backend);

  dse::GaOptions options;
  options.population = 8;
  options.offspring = 8;
  options.generations = 4;
  options.seed = 7;
  options.threads = 2;

  std::uint64_t cold_appends = 0;
  dse::GaResult cold;
  {
    EvalStore store(dir);
    options.evaluator.store = &store;
    cold = optimizer.run(options);
    cold_appends = store.stats().appends;
    EXPECT_GT(cold_appends, 0u);
    EXPECT_EQ(store.stats().hits, 0u);
  }
  {
    // Same campaign against the warm store: every evaluation is served
    // from disk, nothing new is appended, and the trajectory is identical.
    EvalStore store(dir);
    options.evaluator.store = &store;
    const dse::GaResult warm = optimizer.run(options);
    EXPECT_EQ(store.stats().appends, 0u);
    EXPECT_GT(store.stats().hits, 0u);
    EXPECT_EQ(warm.evaluations, cold.evaluations);
    EXPECT_EQ(warm.best_feasible_power, cold.best_feasible_power);
    ASSERT_EQ(warm.pareto.size(), cold.pareto.size());
    for (std::size_t i = 0; i < warm.pareto.size(); ++i)
      EXPECT_EQ(warm.pareto[i].objectives, cold.pareto[i].objectives);
  }
}

TEST(EvalStore, StoreDirectoryShardsBySystemDigest) {
  EXPECT_EQ(core::store_directory("/tmp/cache", 0x0123456789abcdefULL),
            "/tmp/cache/sys-0123456789abcdef");
  EXPECT_EQ(core::store_directory("rel", 0), "rel/sys-0000000000000000");
}

}  // namespace
