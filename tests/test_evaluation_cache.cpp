// Differential lockdown of the evaluation memoization layer (ISSUE 1): a
// cached Evaluator must be observationally identical to an uncached one on
// every field of every Evaluation — the cache may only change how fast an
// answer arrives, never the answer.  Also covers the cache's accounting
// (hits/misses/evictions), the options fingerprint that keeps differently
// configured evaluators from aliasing in a shared cache, collision safety,
// and concurrent use from a thread pool.
#include "ftmc/core/evaluation_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/core/evaluator.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/thread_pool.hpp"

namespace {

using namespace ftmc;

/// Deterministic, repaired random candidates for one synth benchmark.
std::vector<core::Candidate> seeded_candidates(
    const benchmarks::Benchmark& benchmark, std::size_t count,
    std::uint64_t seed) {
  const dse::Decoder decoder(benchmark.arch, benchmark.apps);
  util::Rng rng(seed);
  std::vector<core::Candidate> candidates;
  candidates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
    candidates.push_back(decoder.decode(chromosome, rng));
  }
  return candidates;
}

void expect_identical(const core::Evaluation& a, const core::Evaluation& b) {
  EXPECT_EQ(a.mapping_valid, b.mapping_valid);
  EXPECT_EQ(a.reliability_ok, b.reliability_ok);
  EXPECT_EQ(a.normal_schedulable, b.normal_schedulable);
  EXPECT_EQ(a.critical_schedulable, b.critical_schedulable);
  EXPECT_EQ(a.power, b.power);  // bitwise, not approximate
  EXPECT_EQ(a.service, b.service);
  EXPECT_EQ(a.scenario_count, b.scenario_count);
  EXPECT_EQ(a.graph_wcrt, b.graph_wcrt);
}

// 2 benchmarks x 100 seeded random candidates: cached evaluation must match
// the uncached reference on every field, and re-evaluating the same stream
// must be answered from the cache alone.
TEST(EvaluationCacheDifferential, CachedMatchesUncachedOnRandomCandidates) {
  for (int index : {1, 2}) {
    const benchmarks::Benchmark benchmark =
        benchmarks::synth_benchmark(index);
    const std::vector<core::Candidate> candidates =
        seeded_candidates(benchmark, 100, 1000 + index);

    const sched::HolisticAnalysis backend;
    const core::Evaluator reference(benchmark.arch, benchmark.apps, backend);

    core::EvaluationCache cache;
    core::Evaluator::Options options;
    options.cache = &cache;
    const core::Evaluator cached(benchmark.arch, benchmark.apps, backend,
                                 options);

    for (const core::Candidate& candidate : candidates) {
      SCOPED_TRACE(benchmark.name);
      expect_identical(cached.evaluate(candidate),
                       reference.evaluate(candidate));
    }

    // Second sweep: every lookup must hit and still agree.
    const core::CacheStats after_first = cache.stats();
    EXPECT_EQ(after_first.lookups(), candidates.size());
    for (const core::Candidate& candidate : candidates)
      expect_identical(cached.evaluate(candidate),
                       reference.evaluate(candidate));
    const core::CacheStats after_second = cache.stats();
    EXPECT_EQ(after_second.hits, after_first.hits + candidates.size());
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_GT(after_second.hit_rate(), 0.49);
  }
}

TEST(EvaluationCache, RepeatEvaluationIsAHit) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const auto candidates = seeded_candidates(benchmark, 1, 7);
  const sched::HolisticAnalysis backend;
  core::EvaluationCache cache;
  core::Evaluator::Options options;
  options.cache = &cache;
  const core::Evaluator evaluator(benchmark.arch, benchmark.apps, backend,
                                  options);

  bool hit = true;
  const core::Evaluation first = evaluator.evaluate(candidates[0], &hit);
  EXPECT_FALSE(hit);
  const core::Evaluation second = evaluator.evaluate(candidates[0], &hit);
  EXPECT_TRUE(hit);
  expect_identical(first, second);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// A capacity-bounded cache must evict rather than grow, and eviction must
// never change results — only future hit rates.
TEST(EvaluationCache, TinyCapacityEvictsWithoutChangingResults) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const auto candidates = seeded_candidates(benchmark, 60, 11);
  const sched::HolisticAnalysis backend;
  const core::Evaluator reference(benchmark.arch, benchmark.apps, backend);

  core::EvaluationCache cache(/*capacity=*/8, /*shards=*/1);
  core::Evaluator::Options options;
  options.cache = &cache;
  const core::Evaluator cached(benchmark.arch, benchmark.apps, backend,
                               options);

  for (int sweep = 0; sweep < 2; ++sweep)
    for (const core::Candidate& candidate : candidates)
      expect_identical(cached.evaluate(candidate),
                       reference.evaluate(candidate));

  const core::CacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 8u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.lookups(), 2 * candidates.size());
}

// Evaluators with different analysis options share one cache without
// aliasing: the options fingerprint is part of the key, so the Naive-mode
// evaluator must not be served the Proposed-mode result (or vice versa).
TEST(EvaluationCache, OptionsFingerprintPreventsCrossModeAliasing) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const auto candidates = seeded_candidates(benchmark, 20, 23);
  const sched::HolisticAnalysis backend;
  core::EvaluationCache cache;

  core::Evaluator::Options proposed_options;
  proposed_options.cache = &cache;
  core::Evaluator::Options naive_options = proposed_options;
  naive_options.mode = core::McAnalysis::Mode::kNaive;

  const core::Evaluator proposed(benchmark.arch, benchmark.apps, backend,
                                 proposed_options);
  const core::Evaluator naive(benchmark.arch, benchmark.apps, backend,
                              naive_options);
  const core::Evaluator proposed_reference(benchmark.arch, benchmark.apps,
                                           backend);
  core::Evaluator::Options naive_reference_options;
  naive_reference_options.mode = core::McAnalysis::Mode::kNaive;
  const core::Evaluator naive_reference(benchmark.arch, benchmark.apps,
                                        backend, naive_reference_options);

  for (const core::Candidate& candidate : candidates) {
    expect_identical(proposed.evaluate(candidate),
                     proposed_reference.evaluate(candidate));
    expect_identical(naive.evaluate(candidate),
                     naive_reference.evaluate(candidate));
  }
  // Both evaluators saw fresh keys: no cross-mode hit may have occurred.
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2 * candidates.size());
}

// Exact-equality verification: a find() with the right key but a different
// candidate (a simulated hash collision) degrades to a miss.
TEST(EvaluationCache, KeyCollisionDegradesToMiss) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const auto candidates = seeded_candidates(benchmark, 2, 31);
  ASSERT_FALSE(candidates[0] == candidates[1]);
  const sched::HolisticAnalysis backend;
  const core::Evaluator evaluator(benchmark.arch, benchmark.apps, backend);

  core::EvaluationCache cache;
  const std::uint64_t key = 0xdeadbeefULL;
  cache.insert(key, candidates[0], evaluator.evaluate(candidates[0]));
  EXPECT_TRUE(cache.find(key, candidates[0]).has_value());
  EXPECT_FALSE(cache.find(key, candidates[1]).has_value());
}

TEST(EvaluationCache, ClearResetsEntriesAndServesFreshMisses) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const auto candidates = seeded_candidates(benchmark, 4, 41);
  const sched::HolisticAnalysis backend;
  core::EvaluationCache cache;
  core::Evaluator::Options options;
  options.cache = &cache;
  const core::Evaluator evaluator(benchmark.arch, benchmark.apps, backend,
                                  options);
  for (const auto& candidate : candidates) evaluator.evaluate(candidate);
  EXPECT_EQ(cache.stats().entries, candidates.size());
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  bool hit = true;
  evaluator.evaluate(candidates[0], &hit);
  EXPECT_FALSE(hit);
}

// Many threads sharing one cache over a shuffled duplicate-rich stream:
// every result must still equal the uncached reference.
TEST(EvaluationCache, ConcurrentSharedCacheStaysConsistent) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const auto unique = seeded_candidates(benchmark, 12, 53);
  std::vector<std::size_t> stream;
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t i = 0; i < unique.size(); ++i)
      stream.push_back((i * 7 + r) % unique.size());

  const sched::HolisticAnalysis backend;
  const core::Evaluator reference(benchmark.arch, benchmark.apps, backend);
  std::vector<core::Evaluation> expected;
  expected.reserve(unique.size());
  for (const auto& candidate : unique)
    expected.push_back(reference.evaluate(candidate));

  core::EvaluationCache cache;
  core::Evaluator::Options options;
  options.cache = &cache;
  const core::Evaluator cached(benchmark.arch, benchmark.apps, backend,
                               options);
  std::vector<core::Evaluation> results(stream.size());
  util::ThreadPool pool(4);
  pool.parallel_for(stream.size(), [&](std::size_t i) {
    results[i] = cached.evaluate(unique[stream[i]]);
  });
  for (std::size_t i = 0; i < stream.size(); ++i)
    expect_identical(results[i], expected[stream[i]]);
  EXPECT_EQ(cache.stats().lookups(), stream.size());
  EXPECT_GE(cache.stats().hits, stream.size() - 2 * unique.size());
}

// The byte tally in CacheStats must be exactly the sum of entry_footprint
// over the resident entries — it is what the byte bound evicts against.
TEST(EvaluationCache, BytesMatchEntryFootprints) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const auto candidates = seeded_candidates(benchmark, 10, 67);
  const sched::HolisticAnalysis backend;
  const core::Evaluator evaluator(benchmark.arch, benchmark.apps, backend);

  core::EvaluationCache cache;
  std::size_t expected_bytes = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const core::Evaluation evaluation = evaluator.evaluate(candidates[i]);
    cache.insert(i, candidates[i], evaluation);
    expected_bytes +=
        core::EvaluationCache::entry_footprint(candidates[i], evaluation);
  }
  EXPECT_EQ(cache.stats().bytes, expected_bytes);
  EXPECT_EQ(cache.stats().entries, candidates.size());

  // Overwriting a key swaps footprints instead of double-counting.
  const core::Evaluation other = evaluator.evaluate(candidates[1]);
  cache.insert(0, candidates[1], other);
  expected_bytes -=
      core::EvaluationCache::entry_footprint(candidates[0],
                                             evaluator.evaluate(candidates[0]));
  expected_bytes +=
      core::EvaluationCache::entry_footprint(candidates[1], other);
  EXPECT_EQ(cache.stats().bytes, expected_bytes);
  EXPECT_EQ(cache.stats().entries, candidates.size());

  cache.clear();
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// A byte-bounded cache must stay under capacity_bytes(), attribute those
// evictions to byte_evictions, and never change evaluation results.
TEST(EvaluationCache, ByteCapacityEvictsAndStaysBounded) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const auto candidates = seeded_candidates(benchmark, 40, 71);
  const sched::HolisticAnalysis backend;
  const core::Evaluator reference(benchmark.arch, benchmark.apps, backend);

  // Room for roughly three entries, far below the 1<<16 entry bound, so
  // every eviction in this test is forced by bytes alone.
  const std::size_t budget =
      3 * core::EvaluationCache::entry_footprint(
              candidates[0], reference.evaluate(candidates[0])) +
      16;
  core::EvaluationCache cache(/*capacity=*/1 << 16, /*shards=*/1,
                              /*capacity_bytes=*/budget);
  EXPECT_EQ(cache.capacity_bytes(), budget);
  core::Evaluator::Options options;
  options.cache = &cache;
  const core::Evaluator cached(benchmark.arch, benchmark.apps, backend,
                               options);

  for (int sweep = 0; sweep < 2; ++sweep)
    for (const core::Candidate& candidate : candidates)
      expect_identical(cached.evaluate(candidate),
                       reference.evaluate(candidate));

  const core::CacheStats stats = cache.stats();
  EXPECT_LE(stats.bytes, budget);
  EXPECT_GT(stats.byte_evictions, 0u);
  EXPECT_EQ(stats.byte_evictions, stats.evictions);  // bytes tripped first
  EXPECT_EQ(stats.entries, stats.insertions - stats.evictions);
}

// Snapshot consistency under concurrency: while workers hammer a bounded
// shared cache, every stats() snapshot must satisfy the per-shard invariant
// entries == insertions - evictions (each shard is read in one critical
// section, so a torn insert/evict must never show through).
TEST(EvaluationCache, StatsSnapshotsStayConsistentUnderLoad) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const auto unique = seeded_candidates(benchmark, 24, 73);
  const sched::HolisticAnalysis backend;
  const core::Evaluator reference(benchmark.arch, benchmark.apps, backend);
  std::vector<core::Evaluation> evaluations;
  evaluations.reserve(unique.size());
  for (const auto& candidate : unique)
    evaluations.push_back(reference.evaluate(candidate));

  const std::size_t budget = 4 * core::EvaluationCache::entry_footprint(
                                     unique[0], evaluations[0]);
  core::EvaluationCache cache(/*capacity=*/8, /*shards=*/4,
                              /*capacity_bytes=*/budget);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> bad_snapshots{0};
  std::thread sampler([&] {
    while (!done.load()) {
      const core::CacheStats snapshot = cache.stats();
      if (snapshot.entries != snapshot.insertions - snapshot.evictions ||
          snapshot.byte_evictions > snapshot.evictions)
        bad_snapshots.fetch_add(1);
    }
  });

  util::ThreadPool pool(4);
  pool.parallel_for(4000, [&](std::size_t i) {
    const std::size_t index = (i * 13) % unique.size();
    const std::uint64_t key = core::candidate_hash(unique[index]);
    if (!cache.find(key, unique[index]).has_value())
      cache.insert(key, unique[index], evaluations[index]);
  });
  done.store(true);
  sampler.join();

  EXPECT_EQ(bad_snapshots.load(), 0u);
  const core::CacheStats final_stats = cache.stats();
  EXPECT_EQ(final_stats.entries,
            final_stats.insertions - final_stats.evictions);
  EXPECT_GT(final_stats.evictions, 0u);
}

TEST(CandidateHash, StableAndContentSensitive) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const auto candidates = seeded_candidates(benchmark, 2, 61);
  const core::Candidate& candidate = candidates[0];

  EXPECT_EQ(core::candidate_hash(candidate), core::candidate_hash(candidate));
  EXPECT_NE(core::candidate_hash(candidate),
            core::candidate_hash(candidates[1]));
  EXPECT_NE(core::candidate_hash(candidate, 1),
            core::candidate_hash(candidate, 2));

  core::Candidate flipped_allocation = candidate;
  flipped_allocation.allocation[0] = !flipped_allocation.allocation[0];
  EXPECT_NE(core::candidate_hash(candidate),
            core::candidate_hash(flipped_allocation));

  core::Candidate moved_task = candidate;
  moved_task.base_mapping[0] =
      model::ProcessorId{static_cast<std::uint32_t>(
          (moved_task.base_mapping[0].value + 1) %
          benchmark.arch.processor_count())};
  EXPECT_NE(core::candidate_hash(candidate),
            core::candidate_hash(moved_task));
}

}  // namespace
