#include "ftmc/core/evaluator.hpp"

#include <gtest/gtest.h>

#include "ftmc/sched/holistic.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using core::Candidate;
using core::Evaluator;
using hardening::Technique;
using model::ProcessorId;

struct EvalRig {
  model::Architecture arch = fixtures::test_arch(2);
  model::ApplicationSet apps = fixtures::small_mixed_apps();
  sched::HolisticAnalysis backend;
  Evaluator evaluator{arch, apps, backend};
};

TEST(Evaluator, FeasiblePlainCandidate) {
  EvalRig rig;
  const Candidate candidate =
      fixtures::plain_candidate(rig.arch, rig.apps);
  const auto evaluation = rig.evaluator.evaluate(candidate);
  EXPECT_TRUE(evaluation.mapping_valid);
  EXPECT_TRUE(evaluation.reliability_ok);
  EXPECT_TRUE(evaluation.normal_schedulable);
  EXPECT_TRUE(evaluation.critical_schedulable);
  EXPECT_TRUE(evaluation.feasible());
  EXPECT_LT(evaluation.power, 1000.0);  // no penalty applied
  EXPECT_DOUBLE_EQ(evaluation.service, 2.0);
  EXPECT_EQ(evaluation.graph_wcrt.size(), 2u);
}

TEST(Evaluator, UnallocatedPeInvalidatesMapping) {
  EvalRig rig;
  Candidate candidate = fixtures::plain_candidate(rig.arch, rig.apps);
  candidate.allocation = {true, false};
  candidate.base_mapping.back() = ProcessorId{1};
  const auto evaluation = rig.evaluator.evaluate(candidate);
  EXPECT_FALSE(evaluation.mapping_valid);
  EXPECT_FALSE(evaluation.feasible());
  EXPECT_GE(evaluation.power, 1.0e9);  // penalized
}

TEST(Evaluator, ReplicaOnUnallocatedPeInvalidates) {
  EvalRig rig;
  Candidate candidate = fixtures::plain_candidate(rig.arch, rig.apps);
  candidate.allocation = {true, false};
  for (auto& pe : candidate.base_mapping) pe = ProcessorId{0};
  candidate.plan[0].technique = Technique::kActiveReplication;
  candidate.plan[0].replica_pes = {ProcessorId{0}, ProcessorId{1}};
  candidate.plan[0].voter_pe = ProcessorId{0};
  const auto evaluation = rig.evaluator.evaluate(candidate);
  EXPECT_FALSE(evaluation.mapping_valid);
}

TEST(Evaluator, ReliabilityViolationFlagged) {
  const auto arch = fixtures::test_arch(1);
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("tight", 2, 50, 100, 1000, false, 1e-13));
  const model::ApplicationSet apps{std::move(graphs)};
  const sched::HolisticAnalysis backend;
  const Evaluator evaluator(arch, apps, backend);

  Candidate candidate = fixtures::plain_candidate(arch, apps);
  auto evaluation = evaluator.evaluate(candidate);
  EXPECT_FALSE(evaluation.reliability_ok);
  EXPECT_FALSE(evaluation.feasible());

  for (auto& decision : candidate.plan) {
    decision.technique = Technique::kReexecution;
    decision.reexecutions = 2;
  }
  evaluation = evaluator.evaluate(candidate);
  EXPECT_TRUE(evaluation.reliability_ok);
  EXPECT_TRUE(evaluation.feasible());
}

TEST(Evaluator, DisallowDroppingIgnoresDropSet) {
  EvalRig rig;
  Evaluator::Options options;
  options.allow_dropping = false;
  const Evaluator evaluator(rig.arch, rig.apps, rig.backend, options);
  Candidate candidate = fixtures::plain_candidate(rig.arch, rig.apps);
  candidate.drop[1] = true;
  const auto evaluation = evaluator.evaluate(candidate);
  // Service is computed for the effective (empty) drop set.
  EXPECT_DOUBLE_EQ(evaluation.service, 2.0);
}

TEST(Evaluator, StructuralErrorsThrow) {
  EvalRig rig;
  Candidate candidate = fixtures::plain_candidate(rig.arch, rig.apps);
  candidate.allocation.pop_back();
  EXPECT_THROW(rig.evaluator.evaluate(candidate), std::invalid_argument);

  candidate = fixtures::plain_candidate(rig.arch, rig.apps);
  candidate.drop[0] = true;  // graph 0 is critical
  EXPECT_FALSE(rig.evaluator.structural_error(candidate).empty());

  candidate = fixtures::plain_candidate(rig.arch, rig.apps);
  candidate.allocation = {false, false};
  EXPECT_FALSE(rig.evaluator.structural_error(candidate).empty());

  candidate = fixtures::plain_candidate(rig.arch, rig.apps);
  candidate.base_mapping[0] = ProcessorId{5};
  EXPECT_FALSE(rig.evaluator.structural_error(candidate).empty());

  candidate = fixtures::plain_candidate(rig.arch, rig.apps);
  EXPECT_TRUE(rig.evaluator.structural_error(candidate).empty());
}

TEST(Evaluator, OverloadIsInfeasible) {
  const auto arch = fixtures::test_arch(1);
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("heavy", 3, 400, 500, 1000, false, 1e-6));
  const model::ApplicationSet apps{std::move(graphs)};
  const sched::HolisticAnalysis backend;
  const Evaluator evaluator(arch, apps, backend);
  const auto evaluation =
      evaluator.evaluate(fixtures::plain_candidate(arch, apps));
  EXPECT_FALSE(evaluation.normal_schedulable);
  EXPECT_FALSE(evaluation.feasible());
}

TEST(Evaluator, DroppingTradesServiceForFeasibility) {
  // Same construction as the McAnalysis rescue test, via the evaluator.
  const auto arch = fixtures::test_arch(1);
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("crit", 2, 150, 200, 1000, false, 1e-6));
  graphs.push_back(
      fixtures::chain_graph("load", 2, 150, 150, 1000, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  const sched::HolisticAnalysis backend;
  const Evaluator evaluator(arch, apps, backend);

  Candidate candidate = fixtures::plain_candidate(arch, apps);
  for (std::size_t flat : {0u, 1u}) {
    candidate.plan[flat].technique = Technique::kReexecution;
    candidate.plan[flat].reexecutions = 1;
  }
  auto evaluation = evaluator.evaluate(candidate);
  EXPECT_FALSE(evaluation.feasible());
  EXPECT_DOUBLE_EQ(evaluation.service, 1.0);

  candidate.drop[1] = true;
  evaluation = evaluator.evaluate(candidate);
  EXPECT_TRUE(evaluation.feasible());
  EXPECT_DOUBLE_EQ(evaluation.service, 0.0);
}

}  // namespace
