#include "ftmc/core/exec_model.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace {

using namespace ftmc;
using core::critical_bounds;
using core::critical_wcet;
using core::nominal_bounds;
using core::nominal_wcet;
using core::trigger_bounds;
using hardening::HardenedTaskInfo;
using hardening::TaskRole;

const model::Task kTask{"t", 40, 100, 7, 5};

TEST(ExecModel, PlainOriginal) {
  HardenedTaskInfo info;  // defaults: original, no hardening
  EXPECT_EQ(nominal_wcet(kTask, info), 100);
  EXPECT_EQ(critical_wcet(kTask, info), 100);
  EXPECT_EQ(nominal_bounds(kTask, info).bcet, 40);
  EXPECT_EQ(nominal_bounds(kTask, info).wcet, 100);
  EXPECT_EQ(critical_bounds(kTask, info).wcet, 100);
}

TEST(ExecModel, ReexecutableFollowsEq1) {
  HardenedTaskInfo info;
  info.reexecutions = 2;
  info.pays_detection = true;
  info.triggers_critical_state = true;
  // Nominal: one attempt incl. detection.
  EXPECT_EQ(nominal_wcet(kTask, info), 105);
  EXPECT_EQ(nominal_bounds(kTask, info).bcet, 45);
  EXPECT_EQ(nominal_bounds(kTask, info).wcet, 105);
  // Eq. (1): (wcet + dt) * (k + 1).
  EXPECT_EQ(critical_wcet(kTask, info), 105 * 3);
  EXPECT_EQ(critical_bounds(kTask, info).bcet, 45);
  EXPECT_EQ(critical_bounds(kTask, info).wcet, 315);
  EXPECT_EQ(trigger_bounds(kTask, info).wcet, 315);
}

TEST(ExecModel, PassiveReplicaIsZeroInNormalState) {
  HardenedTaskInfo info;
  info.role = TaskRole::kPassiveReplica;
  info.triggers_critical_state = true;
  EXPECT_EQ(nominal_wcet(kTask, info), 0);
  EXPECT_EQ(nominal_bounds(kTask, info).bcet, 0);
  EXPECT_EQ(nominal_bounds(kTask, info).wcet, 0);
  // Critical: may or may not be activated -> [0, wcet].
  EXPECT_EQ(critical_bounds(kTask, info).bcet, 0);
  EXPECT_EQ(critical_bounds(kTask, info).wcet, 100);
  EXPECT_EQ(trigger_bounds(kTask, info).wcet, 100);
}

TEST(ExecModel, ActiveReplicaBehavesLikePlainTask) {
  HardenedTaskInfo info;
  info.role = TaskRole::kActiveReplica;
  EXPECT_EQ(nominal_bounds(kTask, info).bcet, 40);
  EXPECT_EQ(nominal_bounds(kTask, info).wcet, 100);
  EXPECT_EQ(critical_bounds(kTask, info).wcet, 100);
}

TEST(ExecModel, VoterBounds) {
  // The transform builds voters with bcet = wcet = ve.
  model::Task voter{"v#vote", 7, 7, 0, 0};
  HardenedTaskInfo info;
  info.role = TaskRole::kVoter;
  EXPECT_EQ(nominal_bounds(voter, info).bcet, 7);
  EXPECT_EQ(nominal_bounds(voter, info).wcet, 7);
}

TEST(ExecModel, NominalBoundsOfWholeSystem) {
  const auto apps = fixtures::small_mixed_apps();
  hardening::HardeningPlan plan(apps.task_count());
  plan[0].technique = hardening::Technique::kReexecution;
  plan[0].reexecutions = 1;
  std::vector<model::ProcessorId> mapping(apps.task_count(),
                                          model::ProcessorId{0});
  const auto system = hardening::apply_hardening(apps, plan, mapping, 1);
  const auto bounds = core::nominal_bounds_of(system);
  ASSERT_EQ(bounds.size(), system.apps.task_count());
  // Task 0 (re-executable): bcet/wcet + dt(=2 from helper).
  EXPECT_EQ(bounds[0].bcet, 52);
  EXPECT_EQ(bounds[0].wcet, 102);
  // Task 1 untouched.
  EXPECT_EQ(bounds[1].bcet, 50);
  EXPECT_EQ(bounds[1].wcet, 100);
}

}  // namespace
