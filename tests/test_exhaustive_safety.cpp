// Brute-force soundness check on tiny systems: enumerate EVERY combination
// of (a) per-job execution-time corners (bcet or wcet) and (b) fault
// patterns over the fault-sensitive attempts, simulate each one exactly,
// and verify that Algorithm 1's bound dominates every observed response of
// every non-dropped application.  Unlike the Monte-Carlo sweep this covers
// the scenario space exhaustively (at the corners), so a single missed
// interleaving fails loudly.
#include <gtest/gtest.h>

#include <map>

#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/sim/simulator.hpp"
#include "ftmc/util/rng.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;

/// Per-job execution-time corner selection: bit set -> WCET, else BCET.
class CornerExecution final : public sim::ExecTimeModel {
 public:
  CornerExecution(std::map<std::pair<std::size_t, std::size_t>, int> slots,
                  std::uint64_t mask)
      : slots_(std::move(slots)), mask_(mask) {}

  model::Time attempt_duration(const sim::AttemptKey& key, model::Time bcet,
                               model::Time wcet) override {
    const auto it = slots_.find({key.flat_task, key.instance});
    if (it == slots_.end()) return wcet;
    return (mask_ >> it->second) & 1 ? wcet : bcet;
  }

 private:
  std::map<std::pair<std::size_t, std::size_t>, int> slots_;
  std::uint64_t mask_;
};

struct Exhaustive {
  const model::Architecture& arch;
  const hardening::HardenedSystem& system;
  const core::DropSet& drop;

  /// Runs the full corner x fault-pattern product and checks domination.
  void verify() const {
    const auto priorities = sched::assign_priorities(system.apps);
    const sched::HolisticAnalysis backend;
    const core::McAnalysis analysis(backend);
    const auto verdict = analysis.analyze(arch, system, drop);

    // Job slots: every (task, instance) within one hyperperiod.
    std::map<std::pair<std::size_t, std::size_t>, int> slots;
    const model::Time hyper = system.apps.hyperperiod();
    for (std::size_t i = 0; i < system.apps.task_count(); ++i) {
      const auto period =
          system.apps.graph(system.apps.task_ref(i).graph_id()).period();
      for (model::Time r = 0; r < hyper / period; ++r)
        slots[{i, static_cast<std::size_t>(r)}] =
            static_cast<int>(slots.size());
    }
    ASSERT_LE(slots.size(), 16u) << "instance too large for brute force";

    // Fault slots: attempts that can change timing — re-executable
    // originals (each allowed re-execution) and replicas (first attempt).
    std::vector<sim::AttemptKey> fault_slots;
    for (const auto& [job, index] : slots) {
      const auto& info = system.info[job.first];
      if (info.role == hardening::TaskRole::kOriginal &&
          info.reexecutions > 0) {
        for (int attempt = 1; attempt <= info.reexecutions; ++attempt)
          fault_slots.push_back({job.first, job.second, attempt});
      } else if (info.role == hardening::TaskRole::kActiveReplica) {
        fault_slots.push_back({job.first, job.second, 1});
      }
    }
    ASSERT_LE(fault_slots.size(), 8u) << "fault space too large";

    const sim::Simulator simulator(arch, system, drop, priorities);
    std::size_t runs = 0;
    for (std::uint64_t exec_mask = 0; exec_mask < (1ULL << slots.size());
         ++exec_mask) {
      for (std::uint64_t fault_mask = 0;
           fault_mask < (1ULL << fault_slots.size()); ++fault_mask) {
        sim::PlannedFaults faults;
        for (std::size_t f = 0; f < fault_slots.size(); ++f)
          if ((fault_mask >> f) & 1) faults.add(fault_slots[f]);
        CornerExecution durations(slots, exec_mask);
        const auto trace = simulator.run(faults, durations);
        ++runs;
        for (std::uint32_t g = 0; g < system.apps.graph_count(); ++g) {
          if (drop[g] || trace.graph_response[g] < 0) continue;
          ASSERT_GE(verdict.graph_wcrt(system.apps, model::GraphId{g}),
                    trace.graph_response[g])
              << "graph " << system.apps.graph(model::GraphId{g}).name()
              << " exec_mask=" << exec_mask << " fault_mask=" << fault_mask;
        }
      }
    }
    ASSERT_GT(runs, 0u);
  }
};

// Randomized sweep: tiny synthetic two-graph systems with random light
// hardening, exhaustively corner-checked.
class ExhaustiveSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExhaustiveSweep, RandomTinySystems) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed * 31 + 7);
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph(
      "crit", 2 + rng.index(2), 50 + rng.index(50), 120 + rng.index(80),
      1000, false, 1e-6, rng.index(100)));
  graphs.push_back(fixtures::chain_graph(
      "aux", 1 + rng.index(2), 30 + rng.index(40), 80 + rng.index(60),
      rng.chance(0.5) ? 500 : 1000, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  const auto arch = fixtures::test_arch(2, /*bandwidth=*/0.5);

  hardening::HardeningPlan plan(apps.task_count());
  // Harden one random critical task with k = 1 or 2.
  const std::uint32_t victim = static_cast<std::uint32_t>(
      rng.index(apps.graph(model::GraphId{0}).task_count()));
  plan[apps.flat_index({0, victim})].technique =
      hardening::Technique::kReexecution;
  plan[apps.flat_index({0, victim})].reexecutions =
      1 + static_cast<int>(rng.index(2));

  std::vector<model::ProcessorId> mapping;
  for (std::size_t i = 0; i < apps.task_count(); ++i)
    mapping.push_back(model::ProcessorId{
        static_cast<std::uint32_t>(rng.index(2))});
  const auto system = hardening::apply_hardening(apps, plan, mapping, 2);
  const core::DropSet drop{false, rng.chance(0.7)};
  Exhaustive{arch, system, drop}.verify();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(ExhaustiveSafety, ReexecutableChainWithDroppableNoise) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("crit", 2, 100, 180, 1000, false, 1e-6));
  graphs.push_back(
      fixtures::chain_graph("noise", 1, 50, 90, 500, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  const auto arch = fixtures::test_arch(1);
  hardening::HardeningPlan plan(apps.task_count());
  plan[0].technique = hardening::Technique::kReexecution;
  plan[0].reexecutions = 2;
  const std::vector<model::ProcessorId> mapping(apps.task_count(),
                                                model::ProcessorId{0});
  const auto system = hardening::apply_hardening(apps, plan, mapping, 1);
  const core::DropSet drop{false, true};
  Exhaustive{arch, system, drop}.verify();
}

TEST(ExhaustiveSafety, TwoPesWithCommunication) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("crit", 2, 80, 150, 1000, false,
                                         1e-6, /*bytes=*/200));
  graphs.push_back(
      fixtures::chain_graph("aux", 1, 40, 120, 1000, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  const auto arch = fixtures::test_arch(2, /*bandwidth=*/1.0);
  hardening::HardeningPlan plan(apps.task_count());
  plan[1].technique = hardening::Technique::kReexecution;
  plan[1].reexecutions = 1;
  std::vector<model::ProcessorId> mapping = {
      model::ProcessorId{0}, model::ProcessorId{1}, model::ProcessorId{0}};
  const auto system = hardening::apply_hardening(apps, plan, mapping, 2);
  const core::DropSet drop{false, true};
  Exhaustive{arch, system, drop}.verify();
}

TEST(ExhaustiveSafety, ActiveReplicationWithVoter) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("crit", 2, 60, 110, 1000, false, 1e-6));
  const model::ApplicationSet apps{std::move(graphs)};
  const auto arch = fixtures::test_arch(3);
  hardening::HardeningPlan plan(apps.task_count());
  plan[0].technique = hardening::Technique::kActiveReplication;
  plan[0].replica_pes = {model::ProcessorId{0}, model::ProcessorId{1},
                         model::ProcessorId{2}};
  plan[0].voter_pe = model::ProcessorId{0};
  const std::vector<model::ProcessorId> mapping(apps.task_count(),
                                                model::ProcessorId{0});
  const auto system = hardening::apply_hardening(apps, plan, mapping, 3);
  const core::DropSet drop{false};
  Exhaustive{arch, system, drop}.verify();
}

TEST(ExhaustiveSafety, PassiveReplicationActivation) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("crit", 2, 70, 130, 1000, false, 1e-6));
  graphs.push_back(
      fixtures::chain_graph("low", 1, 30, 80, 1000, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  const auto arch = fixtures::test_arch(2);
  hardening::HardeningPlan plan(apps.task_count());
  plan[0].technique = hardening::Technique::kPassiveReplication;
  plan[0].replica_pes = {model::ProcessorId{0}, model::ProcessorId{1},
                         model::ProcessorId{1}};
  plan[0].voter_pe = model::ProcessorId{0};
  std::vector<model::ProcessorId> mapping = {
      model::ProcessorId{0}, model::ProcessorId{0}, model::ProcessorId{1}};
  const auto system = hardening::apply_hardening(apps, plan, mapping, 2);
  const core::DropSet drop{false, true};
  Exhaustive{arch, system, drop}.verify();
}

TEST(ExhaustiveSafety, MixedHardeningAcrossGraphs) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("a", 1, 90, 160, 1000, false, 1e-6));
  graphs.push_back(
      fixtures::chain_graph("b", 1, 70, 140, 1000, false, 1e-6));
  graphs.push_back(
      fixtures::chain_graph("c", 1, 40, 100, 500, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  const auto arch = fixtures::test_arch(2);
  hardening::HardeningPlan plan(apps.task_count());
  plan[0].technique = hardening::Technique::kReexecution;
  plan[0].reexecutions = 1;
  plan[1].technique = hardening::Technique::kReexecution;
  plan[1].reexecutions = 2;
  std::vector<model::ProcessorId> mapping = {
      model::ProcessorId{0}, model::ProcessorId{0}, model::ProcessorId{0}};
  const auto system = hardening::apply_hardening(apps, plan, mapping, 2);
  const core::DropSet drop{false, false, true};
  Exhaustive{arch, system, drop}.verify();
}

}  // namespace
