#include "ftmc/dse/ga.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "ftmc/sched/holistic.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using dse::GaOptions;
using dse::GaResult;
using dse::GeneticOptimizer;

GaOptions tiny_options() {
  GaOptions options;
  options.population = 16;
  options.offspring = 16;
  options.generations = 6;
  options.seed = 123;
  options.threads = 2;
  return options;
}

struct GaRig {
  model::Architecture arch = fixtures::test_arch(2);
  model::ApplicationSet apps = fixtures::small_mixed_apps();
  sched::HolisticAnalysis backend;
  GeneticOptimizer optimizer{arch, apps, backend};
};

TEST(Ga, FindsFeasibleSolutionsOnEasyInstance) {
  GaRig rig;
  const GaResult result = rig.optimizer.run(tiny_options());
  EXPECT_FALSE(result.archive.empty());
  EXPECT_FALSE(result.pareto.empty());
  EXPECT_FALSE(std::isnan(result.best_feasible_power));
  EXPECT_GT(result.evaluations, 0u);
  for (const auto& individual : result.pareto)
    EXPECT_TRUE(individual.evaluation.feasible());
}

TEST(Ga, DeterministicForFixedSeed) {
  GaRig rig;
  const GaResult a = rig.optimizer.run(tiny_options());
  const GaResult b = rig.optimizer.run(tiny_options());
  EXPECT_EQ(a.best_feasible_power, b.best_feasible_power);
  ASSERT_EQ(a.archive.size(), b.archive.size());
  for (std::size_t i = 0; i < a.archive.size(); ++i)
    EXPECT_EQ(a.archive[i].objectives, b.archive[i].objectives);
}

TEST(Ga, HistoryTracksGenerations) {
  GaRig rig;
  auto options = tiny_options();
  std::atomic<std::size_t> callbacks{0};
  options.on_generation = [&](const dse::GenerationStats&) { ++callbacks; };
  const GaResult result = rig.optimizer.run(options);
  EXPECT_EQ(result.history.size(), options.generations + 1);
  EXPECT_EQ(callbacks.load(), options.generations + 1);
  // Best feasible power is monotone non-increasing once found.
  double best = std::numeric_limits<double>::infinity();
  for (const auto& stats : result.history) {
    if (std::isnan(stats.best_feasible_power)) continue;
    EXPECT_LE(stats.best_feasible_power, best + 1e-9);
    best = std::min(best, stats.best_feasible_power);
  }
}

TEST(Ga, ObserverSeesEveryEvaluation) {
  GaRig rig;
  std::atomic<std::size_t> seen{0};
  rig.optimizer.set_observer(
      [&](const core::Candidate&, const core::Evaluation&) { ++seen; });
  const auto options = tiny_options();
  const GaResult result = rig.optimizer.run(options);
  EXPECT_EQ(seen.load(), result.evaluations);
  EXPECT_EQ(result.evaluations,
            options.population + options.generations * options.offspring);
}

TEST(Ga, NoDroppingModeNeverDrops) {
  GaRig rig;
  auto options = tiny_options();
  options.decoder.allow_dropping = false;
  options.evaluator.allow_dropping = false;
  std::atomic<std::size_t> drops{0};
  rig.optimizer.set_observer(
      [&](const core::Candidate& candidate, const core::Evaluation&) {
        for (bool dropped : candidate.drop)
          if (dropped) ++drops;
      });
  (void)rig.optimizer.run(options);
  EXPECT_EQ(drops.load(), 0u);
}

TEST(Ga, SingleObjectiveModeHasScalarObjectives) {
  GaRig rig;
  auto options = tiny_options();
  options.optimize_service = false;
  const GaResult result = rig.optimizer.run(options);
  for (const auto& individual : result.archive)
    EXPECT_EQ(individual.objectives.size(), 1u);
}

TEST(Ga, BiObjectiveParetoIsMutuallyNonDominated) {
  GaRig rig;
  const GaResult result = rig.optimizer.run(tiny_options());
  for (const auto& a : result.pareto)
    for (const auto& b : result.pareto)
      if (&a != &b) {
        EXPECT_FALSE(dse::dominates(a.objectives, b.objectives));
      }
}

TEST(Ga, RejectsEmptyPopulation) {
  GaRig rig;
  auto options = tiny_options();
  options.population = 0;
  EXPECT_THROW(rig.optimizer.run(options), std::invalid_argument);
}

TEST(Ga, ArchiveRespectsPopulationBound) {
  GaRig rig;
  const auto options = tiny_options();
  const GaResult result = rig.optimizer.run(options);
  EXPECT_LE(result.archive.size(), options.population);
}

// Memoization must never steer the search: for a fixed seed, the run with
// the evaluation cache enabled and the run with it disabled must walk the
// exact same trajectory — identical archive objectives, identical
// chromosomes, identical best power (ISSUE 1 differential guarantee).
void expect_same_trajectory(const GaResult& a, const GaResult& b) {
  EXPECT_EQ(a.evaluations, b.evaluations);
  if (std::isnan(a.best_feasible_power)) {
    EXPECT_TRUE(std::isnan(b.best_feasible_power));
  } else {
    EXPECT_EQ(a.best_feasible_power, b.best_feasible_power);
  }
  ASSERT_EQ(a.archive.size(), b.archive.size());
  for (std::size_t i = 0; i < a.archive.size(); ++i) {
    EXPECT_EQ(a.archive[i].objectives, b.archive[i].objectives);
    EXPECT_EQ(a.archive[i].chromosome, b.archive[i].chromosome);
    EXPECT_EQ(a.archive[i].candidate, b.archive[i].candidate);
  }
}

TEST(Ga, CacheOnOffTrajectoriesIdentical) {
  GaRig rig;
  auto cached = tiny_options();
  cached.cache_evaluations = true;
  auto uncached = tiny_options();
  uncached.cache_evaluations = false;
  expect_same_trajectory(rig.optimizer.run(cached),
                         rig.optimizer.run(uncached));
}

TEST(Ga, ParallelScenariosOnOffTrajectoriesIdentical) {
  GaRig rig;
  auto parallel = tiny_options();
  parallel.parallel_scenarios = true;
  auto sequential = tiny_options();
  sequential.parallel_scenarios = false;
  expect_same_trajectory(rig.optimizer.run(parallel),
                         rig.optimizer.run(sequential));
}

TEST(Ga, SeedPathEqualsOptimizedPath) {
  // Both knobs together: the full optimized configuration against the full
  // seed-path configuration.
  GaRig rig;
  auto optimized = tiny_options();
  optimized.cache_evaluations = true;
  optimized.parallel_scenarios = true;
  auto seed_path = tiny_options();
  seed_path.cache_evaluations = false;
  seed_path.parallel_scenarios = false;
  expect_same_trajectory(rig.optimizer.run(optimized),
                         rig.optimizer.run(seed_path));
}

TEST(Ga, CacheStatisticsAreReportedAndConsistent) {
  GaRig rig;
  auto options = tiny_options();
  options.cache_evaluations = true;
  const GaResult result = rig.optimizer.run(options);

  std::size_t evaluations = 0, hits = 0, misses = 0;
  for (const auto& stats : result.history) {
    evaluations += stats.evaluations;
    hits += stats.cache_hits;
    misses += stats.cache_misses;
    EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.evaluations);
    EXPECT_GE(stats.cache_hit_rate, 0.0);
    EXPECT_LE(stats.cache_hit_rate, 1.0);
    EXPECT_GE(stats.evaluation_seconds, 0.0);
  }
  EXPECT_EQ(evaluations, result.evaluations);
  EXPECT_EQ(hits + misses, result.evaluations);
  // The tiny instance converges quickly, so repeats must occur.
  EXPECT_GT(hits, 0u);
  // The candidate cache's own counters never exceed the combined totals
  // (the genotype memo answers some repeats before the cache sees them).
  EXPECT_LE(result.cache.hits, hits);
  EXPECT_GT(result.cache.lookups(), 0u);
}

TEST(Ga, ExternalCacheIsSharedAcrossRuns) {
  GaRig rig;
  core::EvaluationCache shared;
  auto options = tiny_options();
  options.evaluator.cache = &shared;
  const GaResult first = rig.optimizer.run(options);
  const std::size_t entries_after_first = shared.stats().entries;
  EXPECT_GT(entries_after_first, 0u);

  // Identical rerun: every candidate evaluation is answered by the shared
  // cache, and the trajectory is unchanged.
  const core::CacheStats before = shared.stats();
  const GaResult second = rig.optimizer.run(options);
  expect_same_trajectory(first, second);
  const core::CacheStats after = shared.stats();
  EXPECT_EQ(after.misses, before.misses);  // no new analysis ran
  EXPECT_GT(after.hits, before.hits);
}

}  // namespace
