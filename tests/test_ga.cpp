#include "ftmc/dse/ga.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "ftmc/sched/holistic.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using dse::GaOptions;
using dse::GaResult;
using dse::GeneticOptimizer;

GaOptions tiny_options() {
  GaOptions options;
  options.population = 16;
  options.offspring = 16;
  options.generations = 6;
  options.seed = 123;
  options.threads = 2;
  return options;
}

struct GaRig {
  model::Architecture arch = fixtures::test_arch(2);
  model::ApplicationSet apps = fixtures::small_mixed_apps();
  sched::HolisticAnalysis backend;
  GeneticOptimizer optimizer{arch, apps, backend};
};

TEST(Ga, FindsFeasibleSolutionsOnEasyInstance) {
  GaRig rig;
  const GaResult result = rig.optimizer.run(tiny_options());
  EXPECT_FALSE(result.archive.empty());
  EXPECT_FALSE(result.pareto.empty());
  EXPECT_FALSE(std::isnan(result.best_feasible_power));
  EXPECT_GT(result.evaluations, 0u);
  for (const auto& individual : result.pareto)
    EXPECT_TRUE(individual.evaluation.feasible());
}

TEST(Ga, DeterministicForFixedSeed) {
  GaRig rig;
  const GaResult a = rig.optimizer.run(tiny_options());
  const GaResult b = rig.optimizer.run(tiny_options());
  EXPECT_EQ(a.best_feasible_power, b.best_feasible_power);
  ASSERT_EQ(a.archive.size(), b.archive.size());
  for (std::size_t i = 0; i < a.archive.size(); ++i)
    EXPECT_EQ(a.archive[i].objectives, b.archive[i].objectives);
}

TEST(Ga, HistoryTracksGenerations) {
  GaRig rig;
  auto options = tiny_options();
  std::atomic<std::size_t> callbacks{0};
  options.on_generation = [&](const dse::GenerationStats&) { ++callbacks; };
  const GaResult result = rig.optimizer.run(options);
  EXPECT_EQ(result.history.size(), options.generations + 1);
  EXPECT_EQ(callbacks.load(), options.generations + 1);
  // Best feasible power is monotone non-increasing once found.
  double best = std::numeric_limits<double>::infinity();
  for (const auto& stats : result.history) {
    if (std::isnan(stats.best_feasible_power)) continue;
    EXPECT_LE(stats.best_feasible_power, best + 1e-9);
    best = std::min(best, stats.best_feasible_power);
  }
}

TEST(Ga, ObserverSeesEveryEvaluation) {
  GaRig rig;
  std::atomic<std::size_t> seen{0};
  rig.optimizer.set_observer(
      [&](const core::Candidate&, const core::Evaluation&) { ++seen; });
  const auto options = tiny_options();
  const GaResult result = rig.optimizer.run(options);
  EXPECT_EQ(seen.load(), result.evaluations);
  EXPECT_EQ(result.evaluations,
            options.population + options.generations * options.offspring);
}

TEST(Ga, NoDroppingModeNeverDrops) {
  GaRig rig;
  auto options = tiny_options();
  options.decoder.allow_dropping = false;
  options.evaluator.allow_dropping = false;
  std::atomic<std::size_t> drops{0};
  rig.optimizer.set_observer(
      [&](const core::Candidate& candidate, const core::Evaluation&) {
        for (bool dropped : candidate.drop)
          if (dropped) ++drops;
      });
  (void)rig.optimizer.run(options);
  EXPECT_EQ(drops.load(), 0u);
}

TEST(Ga, SingleObjectiveModeHasScalarObjectives) {
  GaRig rig;
  auto options = tiny_options();
  options.optimize_service = false;
  const GaResult result = rig.optimizer.run(options);
  for (const auto& individual : result.archive)
    EXPECT_EQ(individual.objectives.size(), 1u);
}

TEST(Ga, BiObjectiveParetoIsMutuallyNonDominated) {
  GaRig rig;
  const GaResult result = rig.optimizer.run(tiny_options());
  for (const auto& a : result.pareto)
    for (const auto& b : result.pareto)
      if (&a != &b) {
        EXPECT_FALSE(dse::dominates(a.objectives, b.objectives));
      }
}

TEST(Ga, RejectsEmptyPopulation) {
  GaRig rig;
  auto options = tiny_options();
  options.population = 0;
  EXPECT_THROW(rig.optimizer.run(options), std::invalid_argument);
}

TEST(Ga, ArchiveRespectsPopulationBound) {
  GaRig rig;
  const auto options = tiny_options();
  const GaResult result = rig.optimizer.run(options);
  EXPECT_LE(result.archive.size(), options.population);
}

}  // namespace
