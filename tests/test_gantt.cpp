#include <gtest/gtest.h>

#include <sstream>

#include "ftmc/sched/priority.hpp"
#include "ftmc/sim/simulator.hpp"
#include "ftmc/sim/trace.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;

struct Rendered {
  model::Architecture arch = fixtures::test_arch(2);
  model::ApplicationSet apps = fixtures::small_mixed_apps();
  hardening::HardenedSystem system = hardening::apply_hardening(
      apps, hardening::HardeningPlan(apps.task_count()),
      {model::ProcessorId{0}, model::ProcessorId{0}, model::ProcessorId{1},
       model::ProcessorId{1}},
      2);
  sim::SimResult trace = make_trace(arch, system);

  static sim::SimResult make_trace(const model::Architecture& arch,
                                   const hardening::HardenedSystem& system) {
    const sim::Simulator simulator(arch, system, {false, false},
                                   sched::assign_priorities(system.apps));
    sim::NoFaults no_faults;
    sim::WcetExecution wcet;
    return simulator.run(no_faults, wcet);
  }

  std::string render(model::Time span, model::Time resolution) const {
    std::ostringstream out;
    sim::render_gantt(out, arch, system.apps, trace, span, resolution);
    return out.str();
  }
};

TEST(Gantt, OneRowPerProcessor) {
  const Rendered rendered;
  const std::string chart = rendered.render(400, 10);
  EXPECT_NE(chart.find("pe0 |"), std::string::npos);
  EXPECT_NE(chart.find("pe1 |"), std::string::npos);
  // Axis line at the bottom mentions the span.
  EXPECT_NE(chart.find("400"), std::string::npos);
}

TEST(Gantt, RowWidthMatchesSpanAndResolution) {
  const Rendered rendered;
  const std::string chart = rendered.render(400, 10);
  std::istringstream lines(chart);
  std::string line;
  std::getline(lines, line);
  const auto open = line.find('|');
  const auto close = line.rfind('|');
  EXPECT_EQ(close - open - 1, 40u);  // 400 / 10 columns
}

TEST(Gantt, BusyCellsUseTaskInitials) {
  const Rendered rendered;
  const std::string chart = rendered.render(400, 10);
  // Tasks are crit0/crit1 ('c') on pe0 and drop0/drop1 ('d') on pe1.
  EXPECT_NE(chart.find('c'), std::string::npos);
  EXPECT_NE(chart.find('d'), std::string::npos);
}

TEST(Gantt, IdleTailRendersDots) {
  const Rendered rendered;
  // crit chain ends at 200; a span out to 1000 leaves a long idle tail.
  const std::string chart = rendered.render(1000, 50);
  EXPECT_NE(chart.find("...."), std::string::npos);
}

TEST(Gantt, DegenerateParametersAreNoOps) {
  const Rendered rendered;
  EXPECT_TRUE(rendered.render(0, 10).empty());
  EXPECT_TRUE(rendered.render(100, 0).empty());
  EXPECT_TRUE(rendered.render(-5, 10).empty());
}

TEST(Gantt, CoarseResolutionStillCoversSegments) {
  const Rendered rendered;
  const std::string chart = rendered.render(400, 400);  // single column
  EXPECT_NE(chart.find('c'), std::string::npos);
}

}  // namespace
