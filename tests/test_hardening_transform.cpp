#include <gtest/gtest.h>

#include <algorithm>

#include "ftmc/hardening/hardening.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using hardening::HardenedSystem;
using hardening::HardeningPlan;
using hardening::TaskHardening;
using hardening::TaskRole;
using hardening::Technique;
using model::ProcessorId;
using model::TaskRef;

std::vector<ProcessorId> round_robin(const model::ApplicationSet& apps,
                                     std::size_t pes) {
  std::vector<ProcessorId> mapping(apps.task_count());
  for (std::size_t i = 0; i < mapping.size(); ++i)
    mapping[i] = ProcessorId{static_cast<std::uint32_t>(i % pes)};
  return mapping;
}

TEST(Transform, NoHardeningIsIdentity) {
  const auto apps = fixtures::small_mixed_apps();
  const HardeningPlan plan(apps.task_count());
  const HardenedSystem system =
      hardening::apply_hardening(apps, plan, round_robin(apps, 2), 2);
  EXPECT_EQ(system.apps.task_count(), apps.task_count());
  EXPECT_EQ(system.apps.graph_count(), apps.graph_count());
  for (std::size_t i = 0; i < system.apps.task_count(); ++i) {
    EXPECT_EQ(system.info[i].role, TaskRole::kOriginal);
    EXPECT_EQ(system.info[i].reexecutions, 0);
    EXPECT_FALSE(system.info[i].triggers_critical_state);
    EXPECT_EQ(system.apps.task(system.apps.task_ref(i)).name,
              apps.task(apps.task_ref(i)).name);
  }
  // Channel structure preserved.
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g)
    EXPECT_EQ(system.apps.graph(model::GraphId{g}).channels().size(),
              apps.graph(model::GraphId{g}).channels().size());
}

TEST(Transform, ReexecutionKeepsTopologyAndAnnotates) {
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 2;
  const HardenedSystem system =
      hardening::apply_hardening(apps, plan, round_robin(apps, 2), 2);
  EXPECT_EQ(system.apps.task_count(), apps.task_count());
  EXPECT_EQ(system.info[0].reexecutions, 2);
  EXPECT_TRUE(system.info[0].pays_detection);
  EXPECT_TRUE(system.info[0].triggers_critical_state);
  EXPECT_EQ(system.info[1].reexecutions, 0);
}

TEST(Transform, ActiveReplicationAddsReplicasAndVoter) {
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kActiveReplication;
  plan[0].replica_pes = {ProcessorId{0}, ProcessorId{1}, ProcessorId{2}};
  plan[0].voter_pe = ProcessorId{1};
  const HardenedSystem system =
      hardening::apply_hardening(apps, plan, round_robin(apps, 3), 3);

  // crit graph: 2 tasks -> 3 replicas + voter + successor = 5.
  const model::TaskGraph& graph = system.apps.graph(model::GraphId{0});
  EXPECT_EQ(graph.task_count(), 5u);

  std::size_t replicas = 0, voters = 0, originals = 0;
  for (std::uint32_t v = 0; v < graph.task_count(); ++v) {
    const auto& info = system.info[system.apps.flat_index({0, v})];
    switch (info.role) {
      case TaskRole::kActiveReplica: {
        ++replicas;
        EXPECT_EQ(info.origin, (TaskRef{0, 0}));
        EXPECT_FALSE(info.triggers_critical_state);
        break;
      }
      case TaskRole::kVoter: {
        ++voters;
        const std::size_t flat = system.apps.flat_index({0, v});
        EXPECT_EQ(system.mapping.processor_of_flat(flat), ProcessorId{1});
        // Voter executes the voting overhead.
        EXPECT_EQ(graph.task(v).wcet, apps.task(TaskRef{0, 0}).voting_overhead);
        break;
      }
      case TaskRole::kOriginal:
        ++originals;
        break;
      default:
        FAIL() << "unexpected role";
    }
  }
  EXPECT_EQ(replicas, 3u);
  EXPECT_EQ(voters, 1u);
  EXPECT_EQ(originals, 1u);

  // Voter feeds the former successor; replicas feed the voter.
  std::uint32_t voter = 0, successor = 0;
  for (std::uint32_t v = 0; v < graph.task_count(); ++v) {
    const auto& info = system.info[system.apps.flat_index({0, v})];
    if (info.role == TaskRole::kVoter) voter = v;
    if (info.role == TaskRole::kOriginal) successor = v;
  }
  EXPECT_EQ(graph.predecessors(voter).size(), 3u);
  EXPECT_EQ(graph.predecessors(successor), std::vector<std::uint32_t>{voter});
}

TEST(Transform, ReplicaMappingFollowsPlan) {
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kActiveReplication;
  plan[0].replica_pes = {ProcessorId{2}, ProcessorId{0}};
  plan[0].voter_pe = ProcessorId{1};
  const HardenedSystem system =
      hardening::apply_hardening(apps, plan, round_robin(apps, 3), 3);
  const model::TaskGraph& graph = system.apps.graph(model::GraphId{0});
  std::vector<ProcessorId> replica_pes;
  for (std::uint32_t v = 0; v < graph.task_count(); ++v) {
    const std::size_t flat = system.apps.flat_index({0, v});
    if (system.info[flat].role == TaskRole::kActiveReplica)
      replica_pes.push_back(system.mapping.processor_of_flat(flat));
  }
  EXPECT_EQ(replica_pes, (std::vector<ProcessorId>{ProcessorId{2},
                                                   ProcessorId{0}}));
}

TEST(Transform, PassiveReplicationAddsControlEdgesAndStandby) {
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kPassiveReplication;
  plan[0].replica_pes = {ProcessorId{0}, ProcessorId{1}, ProcessorId{2}};
  plan[0].voter_pe = ProcessorId{0};
  const HardenedSystem system =
      hardening::apply_hardening(apps, plan, round_robin(apps, 3), 3);
  const model::TaskGraph& graph = system.apps.graph(model::GraphId{0});
  EXPECT_EQ(graph.task_count(), 5u);

  std::uint32_t standby = UINT32_MAX;
  std::size_t primaries = 0;
  for (std::uint32_t v = 0; v < graph.task_count(); ++v) {
    const auto& info = system.info[system.apps.flat_index({0, v})];
    if (info.role == TaskRole::kPassiveReplica) {
      standby = v;
      EXPECT_TRUE(info.triggers_critical_state);
    }
    if (info.role == TaskRole::kActiveReplica) ++primaries;
  }
  ASSERT_NE(standby, UINT32_MAX);
  EXPECT_EQ(primaries, 2u);
  // The standby waits for both primaries (control edges).
  EXPECT_EQ(graph.predecessors(standby).size(), 2u);
}

TEST(Transform, ReplicatedMiddleTaskFansInputsToAllReplicas) {
  // chain of 3; replicate the middle task.
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("g", 3, 10, 20, 1000, false, 1e-6));
  const model::ApplicationSet apps{std::move(graphs)};
  HardeningPlan plan(apps.task_count());
  plan[1].technique = Technique::kActiveReplication;
  plan[1].replica_pes = {ProcessorId{0}, ProcessorId{1}};
  plan[1].voter_pe = ProcessorId{0};
  const HardenedSystem system = hardening::apply_hardening(
      apps, plan, round_robin(apps, 2), 2);
  const model::TaskGraph& graph = system.apps.graph(model::GraphId{0});
  // Producer must feed both replicas.
  std::uint32_t producer = UINT32_MAX;
  for (std::uint32_t v = 0; v < graph.task_count(); ++v) {
    const auto& info = system.info[system.apps.flat_index({0, v})];
    if (info.role == TaskRole::kOriginal && info.origin == TaskRef{0, 0})
      producer = v;
  }
  ASSERT_NE(producer, UINT32_MAX);
  EXPECT_EQ(graph.successors(producer).size(), 2u);
}

TEST(Transform, ValidationRejectsBadPlans) {
  const auto apps = fixtures::small_mixed_apps();
  const auto mapping = round_robin(apps, 2);

  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 0;  // must be >= 1
  EXPECT_THROW(hardening::apply_hardening(apps, plan, mapping, 2),
               std::invalid_argument);

  plan[0] = {};
  plan[0].technique = Technique::kActiveReplication;
  plan[0].replica_pes = {ProcessorId{0}};  // needs >= 2
  plan[0].voter_pe = ProcessorId{0};
  EXPECT_THROW(hardening::apply_hardening(apps, plan, mapping, 2),
               std::invalid_argument);

  plan[0] = {};
  plan[0].technique = Technique::kPassiveReplication;
  plan[0].replica_pes = {ProcessorId{0}, ProcessorId{1}};  // needs exactly 3
  plan[0].voter_pe = ProcessorId{0};
  EXPECT_THROW(hardening::apply_hardening(apps, plan, mapping, 2),
               std::invalid_argument);

  plan[0] = {};
  plan[0].technique = Technique::kActiveReplication;
  plan[0].replica_pes = {ProcessorId{0}, ProcessorId{9}};  // PE range
  plan[0].voter_pe = ProcessorId{0};
  EXPECT_THROW(hardening::apply_hardening(apps, plan, mapping, 2),
               std::invalid_argument);

  // Plan size mismatch.
  EXPECT_THROW(hardening::apply_hardening(apps, HardeningPlan(1), mapping, 2),
               std::invalid_argument);
}

TEST(Transform, ReplicationNeedsVotingOverhead) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("g", 2, 10, 20, 1000, false, 1e-6,
                                        /*bytes=*/0, /*ve=*/0));
  const model::ApplicationSet apps{std::move(graphs)};
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kActiveReplication;
  plan[0].replica_pes = {ProcessorId{0}, ProcessorId{1}};
  EXPECT_THROW(
      hardening::apply_hardening(apps, plan, round_robin(apps, 2), 2),
      std::invalid_argument);
}

TEST(Transform, MappingMustMatchAndBeInRange) {
  const auto apps = fixtures::small_mixed_apps();
  const HardeningPlan plan(apps.task_count());
  EXPECT_THROW(hardening::apply_hardening(apps, plan, {}, 2),
               std::invalid_argument);
  auto mapping = round_robin(apps, 2);
  mapping[0] = ProcessorId{7};
  EXPECT_THROW(hardening::apply_hardening(apps, plan, mapping, 2),
               std::invalid_argument);
}

TEST(Transform, GraphAttributesSurviveTransform) {
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kActiveReplication;
  plan[0].replica_pes = {ProcessorId{0}, ProcessorId{1}};
  plan[0].voter_pe = ProcessorId{0};
  const HardenedSystem system =
      hardening::apply_hardening(apps, plan, round_robin(apps, 2), 2);
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const auto& before = apps.graph(model::GraphId{g});
    const auto& after = system.apps.graph(model::GraphId{g});
    EXPECT_EQ(after.name(), before.name());
    EXPECT_EQ(after.period(), before.period());
    EXPECT_EQ(after.droppable(), before.droppable());
    EXPECT_EQ(after.service_value(), before.service_value());
  }
}

TEST(Transform, ToStringCoverage) {
  EXPECT_STREQ(hardening::to_string(Technique::kNone), "none");
  EXPECT_STREQ(hardening::to_string(Technique::kReexecution),
               "re-execution");
  EXPECT_STREQ(hardening::to_string(Technique::kActiveReplication),
               "active-replication");
  EXPECT_STREQ(hardening::to_string(Technique::kPassiveReplication),
               "passive-replication");
  EXPECT_STREQ(hardening::to_string(TaskRole::kOriginal), "original");
  EXPECT_STREQ(hardening::to_string(TaskRole::kActiveReplica),
               "active-replica");
  EXPECT_STREQ(hardening::to_string(TaskRole::kPassiveReplica),
               "passive-replica");
  EXPECT_STREQ(hardening::to_string(TaskRole::kVoter), "voter");
}

}  // namespace
