// Regression pins for the one FNV-1a construction in the codebase
// (util/hash.hpp).  These digests key persisted artifacts — checkpoint
// payload digests, evaluation-store records and index slots, evaluation
// cache keys — so an accidental change to the hash constants, the feed
// order, or the finalizer would silently orphan every store and checkpoint
// on disk.  The literals below were produced by the current construction;
// a failure here means the on-disk format changed, not that the pin is
// stale.
#include "ftmc/util/hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

namespace {

using ftmc::util::Fnv1aHasher;
using ftmc::util::fnv1a_bytes;
using ftmc::util::fnv1a_stream;

TEST(Hash, PinnedConstants) {
  EXPECT_EQ(Fnv1aHasher::kOffsetBasis, 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1aHasher::kPrime, 0x00000100000001b3ULL);
}

TEST(Hash, PinnedEmptyDigest) {
  // Finalizer applied to the bare offset basis.
  EXPECT_EQ(Fnv1aHasher().digest(), 0xc3817c016ba4ff30ULL);
}

TEST(Hash, PinnedByteDigest) {
  const std::uint8_t abc[] = {'a', 'b', 'c'};
  EXPECT_EQ(fnv1a_bytes(std::span<const std::uint8_t>(abc, 3)),
            0x29e32c04ec3f9c30ULL);
  EXPECT_EQ(fnv1a_bytes({}), Fnv1aHasher().digest());
}

TEST(Hash, PinnedSeededDigest) {
  EXPECT_EQ(Fnv1aHasher(42).digest(), 0xa4e6579fd9ba8f6dULL);
}

TEST(Hash, PinnedValueFeed) {
  Fnv1aHasher hasher;
  for (std::uint64_t value : {1ULL, 2ULL, 3ULL}) hasher.feed(value);
  EXPECT_EQ(hasher.digest(), 0x08638879170c2de7ULL);
}

TEST(Hash, StreamMatchesManualFeed) {
  // fnv1a_stream is the shared construction behind the scenario-bounds and
  // lane-signature dedup sites: it must be exactly "one hasher, feed each
  // element in order, finalize".
  const std::uint64_t values[] = {1, 2, 3};
  const std::uint64_t digest =
      fnv1a_stream(3, [&](Fnv1aHasher& hasher, std::size_t i) {
        hasher.feed(values[i]);
      });
  EXPECT_EQ(digest, 0x08638879170c2de7ULL);
}

TEST(Hash, PinnedRangeFeed) {
  // feed_range is length-prefixed, so it must NOT equal the raw feed.
  const std::uint64_t values[] = {1, 2, 3};
  Fnv1aHasher hasher;
  hasher.feed_range(std::span<const std::uint64_t>(values, 3));
  EXPECT_EQ(hasher.digest(), 0x11067c64fda12a9eULL);
  EXPECT_NE(hasher.digest(), 0x08638879170c2de7ULL);
}

TEST(Hash, PinnedBitsFeed) {
  Fnv1aHasher hasher;
  hasher.feed_bits(std::vector<bool>{true, false, true});
  EXPECT_EQ(hasher.digest(), 0xc330267d02927c34ULL);
}

TEST(Hash, LengthPrefixDisambiguatesSplits) {
  const std::uint64_t a[] = {1, 2};
  const std::uint64_t b[] = {3};
  const std::uint64_t c[] = {1};
  const std::uint64_t d[] = {2, 3};
  Fnv1aHasher first;
  first.feed_range(std::span<const std::uint64_t>(a, 2));
  first.feed_range(std::span<const std::uint64_t>(b, 1));
  Fnv1aHasher second;
  second.feed_range(std::span<const std::uint64_t>(c, 1));
  second.feed_range(std::span<const std::uint64_t>(d, 2));
  EXPECT_NE(first.digest(), second.digest());
}

TEST(Hash, OrderSensitive) {
  Fnv1aHasher ab;
  ab.feed_byte(0x01);
  ab.feed_byte(0x02);
  Fnv1aHasher ba;
  ba.feed_byte(0x02);
  ba.feed_byte(0x01);
  EXPECT_NE(ab.digest(), ba.digest());
}

}  // namespace
