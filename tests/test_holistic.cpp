#include "ftmc/sched/holistic.hpp"

#include <gtest/gtest.h>

#include "ftmc/sched/priority.hpp"
#include "ftmc/util/rng.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using sched::AnalysisResult;
using sched::ExecBounds;
using sched::HolisticAnalysis;

struct Fixture {
  model::Architecture arch;
  model::ApplicationSet apps;
  model::Mapping mapping;
  std::vector<std::uint32_t> priorities;

  Fixture(model::Architecture a, model::ApplicationSet s)
      : arch(std::move(a)), apps(std::move(s)), mapping(apps),
        priorities(sched::assign_priorities(apps)) {}
};

std::vector<ExecBounds> bounds_from_tasks(const model::ApplicationSet& apps) {
  std::vector<ExecBounds> bounds;
  for (std::size_t i = 0; i < apps.task_count(); ++i) {
    const model::Task& task = apps.task(apps.task_ref(i));
    bounds.push_back({task.bcet, task.wcet});
  }
  return bounds;
}

TEST(Holistic, SingleTask) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("g", 1, 10, 30, 1000, false, 1e-6));
  Fixture fx(fixtures::test_arch(1), model::ApplicationSet(std::move(graphs)));
  const HolisticAnalysis analysis;
  const auto result = analysis.analyze(fx.arch, fx.apps, fx.mapping,
                                       bounds_from_tasks(fx.apps),
                                       fx.priorities);
  ASSERT_TRUE(result.schedulable);
  EXPECT_EQ(result.windows[0].min_start, 0);
  EXPECT_EQ(result.windows[0].min_finish, 10);
  EXPECT_EQ(result.windows[0].max_start, 0);
  EXPECT_EQ(result.windows[0].max_finish, 30);
}

TEST(Holistic, ChainOnOnePe) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("g", 3, 10, 30, 1000, false, 1e-6));
  Fixture fx(fixtures::test_arch(1), model::ApplicationSet(std::move(graphs)));
  const HolisticAnalysis analysis;
  const auto result = analysis.analyze(fx.arch, fx.apps, fx.mapping,
                                       bounds_from_tasks(fx.apps),
                                       fx.priorities);
  ASSERT_TRUE(result.schedulable);
  // Best case: 10, 20, 30 cumulative.
  EXPECT_EQ(result.windows[0].min_finish, 10);
  EXPECT_EQ(result.windows[1].min_start, 10);
  EXPECT_EQ(result.windows[2].min_finish, 30);
  // Worst case must cover the sequential sum and each stage's bound must
  // not precede its predecessors'.
  EXPECT_GE(result.windows[2].max_finish, 90);
  EXPECT_GE(result.windows[1].max_finish, result.windows[0].max_finish);
  EXPECT_LE(result.windows[2].max_finish, 1000);
  EXPECT_EQ(result.graph_wcrt(fx.apps, model::GraphId{0}),
            result.windows[2].max_finish);
}

TEST(Holistic, CommunicationDelayOnlyAcrossPes) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("g", 2, 10, 10, 1000, false, 1e-6,
                                        /*bytes=*/100));
  // bandwidth 1 byte/us -> 100us transfer when remote.
  Fixture fx(fixtures::test_arch(2, 1.0),
             model::ApplicationSet(std::move(graphs)));

  const HolisticAnalysis analysis;
  // Same PE: no transfer delay.
  auto result = analysis.analyze(fx.arch, fx.apps, fx.mapping,
                                 bounds_from_tasks(fx.apps), fx.priorities);
  EXPECT_EQ(result.windows[1].min_start, 10);

  // Remote: +100us.
  fx.mapping.assign_flat(1, model::ProcessorId{1});
  result = analysis.analyze(fx.arch, fx.apps, fx.mapping,
                            bounds_from_tasks(fx.apps), fx.priorities);
  EXPECT_EQ(result.windows[1].min_start, 110);
  EXPECT_GE(result.windows[1].max_finish, 120);
}

TEST(Holistic, HigherPriorityTaskInterferes) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("hp", 1, 20, 20, 100, false, 1e-6));
  graphs.push_back(fixtures::chain_graph("lp", 1, 30, 30, 1000, false, 1e-6));
  Fixture fx(fixtures::test_arch(1), model::ApplicationSet(std::move(graphs)));
  const HolisticAnalysis analysis;
  const auto result = analysis.analyze(fx.arch, fx.apps, fx.mapping,
                                       bounds_from_tasks(fx.apps),
                                       fx.priorities);
  ASSERT_TRUE(result.schedulable);
  // hp: no interference.
  EXPECT_EQ(result.windows[0].max_finish, 20);
  // lp: 30 own + interference from hp jobs (20 each per 100us window).
  EXPECT_GE(result.windows[1].max_finish, 50);
  EXPECT_LE(result.windows[1].max_finish, 90);
}

TEST(Holistic, NoInterferenceAcrossPes) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("hp", 1, 20, 20, 100, false, 1e-6));
  graphs.push_back(fixtures::chain_graph("lp", 1, 30, 30, 1000, false, 1e-6));
  Fixture fx(fixtures::test_arch(2), model::ApplicationSet(std::move(graphs)));
  fx.mapping.assign_flat(1, model::ProcessorId{1});
  const HolisticAnalysis analysis;
  const auto result = analysis.analyze(fx.arch, fx.apps, fx.mapping,
                                       bounds_from_tasks(fx.apps),
                                       fx.priorities);
  EXPECT_EQ(result.windows[1].max_finish, 30);
}

TEST(Holistic, ZeroBoundsTasksPassThrough) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("g", 3, 10, 10, 1000, false, 1e-6));
  Fixture fx(fixtures::test_arch(1), model::ApplicationSet(std::move(graphs)));
  auto bounds = bounds_from_tasks(fx.apps);
  bounds[1] = {0, 0};  // middle task dropped
  const HolisticAnalysis analysis;
  const auto result = analysis.analyze(fx.arch, fx.apps, fx.mapping, bounds,
                                       fx.priorities);
  ASSERT_TRUE(result.schedulable);
  EXPECT_EQ(result.windows[1].min_finish, result.windows[1].min_start);
  EXPECT_EQ(result.windows[1].max_finish, result.windows[0].max_finish);
  EXPECT_EQ(result.windows[2].max_finish, 20);
}

TEST(Holistic, OverloadIsDetectedAsUnschedulable) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("a", 1, 80, 80, 100, false, 1e-6));
  graphs.push_back(fixtures::chain_graph("b", 1, 80, 80, 100, false, 1e-6));
  Fixture fx(fixtures::test_arch(1), model::ApplicationSet(std::move(graphs)));
  const HolisticAnalysis analysis;
  const auto result = analysis.analyze(fx.arch, fx.apps, fx.mapping,
                                       bounds_from_tasks(fx.apps),
                                       fx.priorities);
  EXPECT_FALSE(result.schedulable);
  EXPECT_FALSE(result.meets_deadlines(fx.apps));
  // The lower-priority task's bound is the sentinel.
  EXPECT_EQ(result.windows[1].max_finish, sched::kUnschedulable);
}

TEST(Holistic, ScaledExecutionOnSlowPe) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("g", 1, 10, 20, 1000, false, 1e-6));
  model::ArchitectureBuilder builder;
  builder.add_processor(fixtures::test_pe("slow", 1e-8, /*speed=*/2.0));
  Fixture fx(builder.build(), model::ApplicationSet(std::move(graphs)));
  const HolisticAnalysis analysis;
  const auto result = analysis.analyze(fx.arch, fx.apps, fx.mapping,
                                       bounds_from_tasks(fx.apps),
                                       fx.priorities);
  EXPECT_EQ(result.windows[0].min_finish, 20);
  EXPECT_EQ(result.windows[0].max_finish, 40);
}

TEST(Holistic, MeetsDeadlinesVerdict) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("g", 2, 10, 400, 1000, false, 1e-6));
  Fixture fx(fixtures::test_arch(1), model::ApplicationSet(std::move(graphs)));
  const HolisticAnalysis analysis;
  const auto result = analysis.analyze(fx.arch, fx.apps, fx.mapping,
                                       bounds_from_tasks(fx.apps),
                                       fx.priorities);
  ASSERT_TRUE(result.schedulable);
  // 800 <= 1000: fits.
  EXPECT_TRUE(result.meets_deadlines(fx.apps));
}

TEST(Holistic, ValidationErrors) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("g", 2, 10, 20, 1000, false, 1e-6));
  Fixture fx(fixtures::test_arch(1), model::ApplicationSet(std::move(graphs)));
  const HolisticAnalysis analysis;
  const auto bounds = bounds_from_tasks(fx.apps);
  EXPECT_THROW(analysis.analyze(fx.arch, fx.apps, fx.mapping,
                                std::vector<ExecBounds>{}, fx.priorities),
               std::invalid_argument);
  EXPECT_THROW(analysis.analyze(fx.arch, fx.apps, fx.mapping, bounds,
                                std::vector<std::uint32_t>{}),
               std::invalid_argument);
  auto bad = bounds;
  bad[0] = {10, 5};
  EXPECT_THROW(
      analysis.analyze(fx.arch, fx.apps, fx.mapping, bad, fx.priorities),
      std::invalid_argument);
}

// Property: widening any task's WCET never shrinks any max_finish
// (monotonicity of the fixed point).
class HolisticMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HolisticMonotonicity, WidenedWcetNeverShrinksBounds) {
  util::Rng rng(GetParam());
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("a", 3, 10, 40, 1000, false, 1e-6,
                                        /*bytes=*/50));
  graphs.push_back(fixtures::chain_graph("b", 2, 20, 50, 500, true, 1.0));
  Fixture fx(fixtures::test_arch(2, 1.0),
             model::ApplicationSet(std::move(graphs)));
  for (std::size_t i = 0; i < fx.apps.task_count(); ++i)
    fx.mapping.assign_flat(i, model::ProcessorId{static_cast<std::uint32_t>(
                                  rng.index(2))});

  auto bounds = bounds_from_tasks(fx.apps);
  const HolisticAnalysis analysis;
  const auto before = analysis.analyze(fx.arch, fx.apps, fx.mapping, bounds,
                                       fx.priorities);
  const std::size_t victim = rng.index(bounds.size());
  bounds[victim].wcet += static_cast<model::Time>(rng.uniform_int(1, 60));
  const auto after = analysis.analyze(fx.arch, fx.apps, fx.mapping, bounds,
                                      fx.priorities);
  for (std::size_t i = 0; i < bounds.size(); ++i)
    EXPECT_GE(after.windows[i].max_finish, before.windows[i].max_finish)
        << "task " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HolisticMonotonicity,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
