// End-to-end scenarios across modules: full DSE on benchmarks, the
// motivational example of Figure 1, and cross-estimator consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ftmc/benchmarks/dream.hpp"
#include "ftmc/benchmarks/cruise.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/dse/ga.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sim/simulator.hpp"
#include "ftmc/sim/trace.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;

TEST(Integration, DseOnDtMedFindsFeasibleDesigns) {
  const auto bench = benchmarks::dt_med_benchmark();
  const sched::HolisticAnalysis backend;
  dse::GeneticOptimizer optimizer(bench.arch, bench.apps, backend);
  dse::GaOptions options;
  options.population = 30;
  options.offspring = 30;
  options.generations = 20;
  options.seed = 1;
  const auto result = optimizer.run(options);
  ASSERT_FALSE(result.pareto.empty());
  EXPECT_FALSE(std::isnan(result.best_feasible_power));
  // Every Pareto design satisfies all constraints end to end.
  const core::Evaluator evaluator(bench.arch, bench.apps, backend);
  for (const auto& individual : result.pareto) {
    const auto recheck = evaluator.evaluate(individual.candidate);
    EXPECT_TRUE(recheck.feasible());
    EXPECT_DOUBLE_EQ(recheck.power, individual.evaluation.power);
  }
}

TEST(Integration, MotivationalExampleOfFigure1) {
  // Three applications, two criticality levels (Figure 1): in the fault
  // case the re-execution of A breaks the high-critical deadline unless the
  // low-criticality graph is dropped.
  std::vector<model::TaskGraph> graphs;
  {
    model::TaskGraphBuilder high("high");
    const auto a = high.add_task("A", 100, 100, 5, 10);
    const auto b = high.add_task("B", 100, 100, 5, 10);
    const auto e = high.add_task("E", 120, 120, 5, 10);
    high.connect(a, e, 0).connect(b, e, 0);
    high.period(500).reliability(1e-9);
    graphs.push_back(high.build());
  }
  {
    model::TaskGraphBuilder mid("mid");
    const auto c = mid.add_task("C", 80, 80, 5, 10);
    const auto f = mid.add_task("F", 80, 80, 5, 10);
    mid.connect(c, f, 0);
    mid.period(500).reliability(1e-9);
    graphs.push_back(mid.build());
  }
  {
    model::TaskGraphBuilder low("low");
    const auto g = low.add_task("G", 90, 90, 5, 10);
    const auto h = low.add_task("H", 90, 90, 5, 10);
    const auto i = low.add_task("I", 90, 90, 5, 10);
    low.connect(g, h, 0).connect(h, i, 0);
    low.period(500).droppable(1.0);
    graphs.push_back(low.build());
  }
  const model::ApplicationSet apps{std::move(graphs)};
  const auto arch = fixtures::test_arch(2);

  // A re-executable; everything split over two PEs.
  hardening::HardeningPlan plan(apps.task_count());
  plan[0].technique = hardening::Technique::kReexecution;
  plan[0].reexecutions = 1;
  std::vector<model::ProcessorId> mapping = {
      model::ProcessorId{0}, model::ProcessorId{1}, model::ProcessorId{0},
      model::ProcessorId{1}, model::ProcessorId{1}, model::ProcessorId{0},
      model::ProcessorId{0}, model::ProcessorId{1}};
  const auto system = hardening::apply_hardening(apps, plan, mapping, 2);
  const auto priorities = sched::assign_priorities(system.apps);

  const sched::HolisticAnalysis backend;
  const core::McAnalysis analysis(backend);
  // Keeping everything: the critical state is unschedulable.
  const auto keeping =
      analysis.analyze(arch, system, {false, false, false});
  EXPECT_TRUE(keeping.normal_schedulable);
  EXPECT_FALSE(keeping.critical_schedulable);
  // Dropping the low graph rescues the high-critical deadline.
  const auto dropping =
      analysis.analyze(arch, system, {false, false, true});
  EXPECT_TRUE(dropping.normal_schedulable);
  EXPECT_TRUE(dropping.critical_schedulable);

  // Confirm with a concrete faulty trace: fault in A -> G/H/I dropped and
  // E still meets the 500 deadline.
  const sim::Simulator simulator(arch, system, {false, false, true},
                                 priorities);
  sim::PlannedFaults faults;
  faults.add(sim::AttemptKey{0, 0, 1});
  sim::WcetExecution wcet;
  const auto trace = simulator.run(faults, wcet);
  EXPECT_GE(trace.critical_entry[0], 0);
  EXPECT_LE(trace.graph_response[0], 500);
  EXPECT_FALSE(trace.deadline_miss);
  EXPECT_EQ(trace.graph_response[2], -1);  // low dropped entirely
}

TEST(Integration, GanttRendererProducesPlausibleChart) {
  const auto apps = fixtures::small_mixed_apps();
  const auto arch = fixtures::test_arch(2);
  const hardening::HardeningPlan plan(apps.task_count());
  std::vector<model::ProcessorId> mapping(apps.task_count(),
                                          model::ProcessorId{0});
  mapping[2] = model::ProcessorId{1};
  mapping[3] = model::ProcessorId{1};
  const auto system = hardening::apply_hardening(apps, plan, mapping, 2);
  const sim::Simulator simulator(arch, system, {false, false},
                                 sched::assign_priorities(system.apps));
  sim::NoFaults no_faults;
  sim::WcetExecution wcet;
  const auto trace = simulator.run(no_faults, wcet);
  std::ostringstream out;
  sim::render_gantt(out, arch, system.apps, trace, 400, 10);
  const std::string chart = out.str();
  EXPECT_NE(chart.find("pe0"), std::string::npos);
  EXPECT_NE(chart.find("pe1"), std::string::npos);
  // Busy cells rendered with task initials ('c' for crit0/1, 'd' for drop).
  EXPECT_NE(chart.find('c'), std::string::npos);
  EXPECT_NE(chart.find('d'), std::string::npos);
}

TEST(Integration, ProposedTighterThanNaiveButSafeOnCruise) {
  const auto cruise = benchmarks::cruise_benchmark();
  const sched::HolisticAnalysis backend;
  const core::McAnalysis analysis(backend);
  const auto configs = benchmarks::cruise_sample_configs(cruise);
  std::size_t strictly_tighter = 0;
  for (const auto& config : configs) {
    const auto system = hardening::apply_hardening(
        cruise.apps, config.candidate.plan, config.candidate.base_mapping,
        cruise.arch.processor_count());
    const auto proposed = analysis.analyze(cruise.arch, system,
                                           config.candidate.drop,
                                           core::McAnalysis::Mode::kProposed);
    const auto naive = analysis.analyze(cruise.arch, system,
                                        config.candidate.drop,
                                        core::McAnalysis::Mode::kNaive);
    for (const char* name : {"speed_ctrl", "brake_mon"}) {
      const auto id = system.apps.find_graph(name);
      EXPECT_LE(proposed.graph_wcrt(system.apps, id),
                naive.graph_wcrt(system.apps, id));
      if (proposed.graph_wcrt(system.apps, id) <
          naive.graph_wcrt(system.apps, id))
        ++strictly_tighter;
    }
  }
  // The chronological refinement must actually buy something somewhere.
  EXPECT_GT(strictly_tighter, 0u);
}

TEST(Integration, EvaluatorAgreesWithManualPipeline) {
  const auto bench = benchmarks::dt_med_benchmark();
  const sched::HolisticAnalysis backend;
  const core::Evaluator evaluator(bench.arch, bench.apps, backend);
  core::Candidate candidate =
      fixtures::plain_candidate(bench.arch, bench.apps);
  const auto evaluation = evaluator.evaluate(candidate);

  const auto system = hardening::apply_hardening(
      bench.apps, candidate.plan, candidate.base_mapping,
      bench.arch.processor_count());
  const double power = core::expected_power(
      bench.arch, system, candidate.allocation);
  if (evaluation.feasible()) {
    EXPECT_DOUBLE_EQ(evaluation.power, power);
  } else {
    // Infeasible candidates carry a graded penalty of at least one base
    // unit on top of the raw power.
    EXPECT_GE(evaluation.power, power + 1.0e9);
  }
  EXPECT_DOUBLE_EQ(evaluation.service,
                   core::max_service_value(bench.apps));
}

}  // namespace
