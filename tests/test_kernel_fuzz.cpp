// Randomized differential fuzz harness for the WCRT analysis kernel
// (ISSUE 6): the four backend configurations
//
//   sweep        full-sweep global fixed point (worklist off; warm-start and
//                batching are gated off with it),
//   worklist     change-driven worklist, cold scalar solves (the ISSUE 2
//                kernel: warm_start = false, scenario_batch = 1),
//   warm         worklist + warm-started scenario solves (trajectory replay
//                seeded from the captured base, scenario_batch = 1),
//   warm+batch   worklist + warm-start + batched SoA scenario solving,
//
// must produce bitwise-identical bounds, schedulability verdicts, and
// divergence flags on every input.  Each iteration draws a random system
// (graph shapes, criticality mixes, utilization including overload,
// bus/no-bus, offset-aware vs jitter-fallback) and a random decoded
// candidate, then cross-checks the backends at two levels:
//
//   - McAnalysis::analyze end-to-end (real transition scenarios, real
//     release cutoffs, real dedup), and
//   - PreparedProblem::solve_capture / solve_many against per-scenario
//     cold solve() on scenario-shaped bounds vectors.
//
// Every failure is SCOPED_TRACE-tagged with the iteration seed; rerun a
// single failing input with FTMC_FUZZ_SEED=<seed> FTMC_FUZZ_ITERS=1.
//
// Environment knobs: FTMC_FUZZ_ITERS (default 40 — the short deterministic
// tier-1 subset; CI's sanitizer job raises it to 300+), FTMC_FUZZ_SEED
// (default 2024, the base of the per-iteration seed sequence).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/obs/metrics.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sched/prepared_problem.hpp"
#include "ftmc/util/rng.hpp"
#include "ftmc/util/thread_pool.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using fixtures::CandidateFixture;
using fixtures::expect_same_mc_result;
using fixtures::expect_same_result;
using fixtures::make_candidate;
using fixtures::scenario_like_bounds;
using sched::PreparedProblem;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  return static_cast<std::uint64_t>(std::atoll(raw));
}

/// A random mixed-critical system: random DAG shapes, criticality mix,
/// utilization (occasionally overloaded so the fixed point diverges),
/// channel sizes, and platform size.
benchmarks::Benchmark random_benchmark(util::Rng& rng) {
  benchmarks::SynthParams params;
  params.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  params.graph_count = 2 + rng.index(4);
  params.min_tasks = 2 + rng.index(3);
  params.max_tasks = params.min_tasks + 1 + rng.index(5);
  params.graph_utilization =
      rng.chance(0.15) ? rng.uniform_real(0.9, 1.6)  // overload -> divergence
                       : rng.uniform_real(0.08, 0.45);
  params.bcet_fraction = rng.uniform_real(0.2, 0.95);
  params.extra_edge_probability = rng.uniform_real(0.0, 0.4);
  params.droppable_fraction = rng.uniform_real(0.0, 1.0);
  // (bus-free systems come from Options::bus_contention = false below; the
  // generator requires a non-zero channel-size menu.)
  params.max_channel_bytes = 1 + rng.index(4096);
  return benchmarks::Benchmark{
      "fuzz",
      fixtures::test_arch(1 + rng.index(4), rng.chance(0.5) ? 1.0 : 0.25),
      benchmarks::synthetic_applications(params)};
}

/// The four kernel configurations under test, sharing `base`'s regime
/// toggles (bus contention, offset-aware vs jitter-fallback).
struct BackendArms {
  sched::HolisticAnalysis sweep;
  sched::HolisticAnalysis worklist;
  sched::HolisticAnalysis warm;
  sched::HolisticAnalysis warm_batch;

  explicit BackendArms(sched::HolisticAnalysis::Options base,
                       std::size_t batch)
      : sweep(with(base, /*worklist=*/false, false, 1)),
        worklist(with(base, true, false, 1)),
        warm(with(base, true, true, 1)),
        warm_batch(with(base, true, true, batch)) {}

  static sched::HolisticAnalysis::Options with(
      sched::HolisticAnalysis::Options options, bool worklist, bool warm,
      std::size_t batch) {
    options.worklist_fixed_point = worklist;
    options.warm_start = warm;
    options.scenario_batch = batch;
    return options;
  }
};

void run_mc_level(const benchmarks::Benchmark& benchmark,
                  const CandidateFixture& fx, const BackendArms& arms,
                  util::ThreadPool* pool) {
  const core::McAnalysis sweep(arms.sweep);
  const core::McAnalysis worklist(arms.worklist);
  const core::McAnalysis warm(arms.warm);
  const core::McAnalysis warm_batch(arms.warm_batch);

  const auto reference = sweep.analyze(benchmark.arch, fx.system,
                                       fx.candidate.drop);
  {
    SCOPED_TRACE("worklist vs sweep");
    expect_same_mc_result(reference,
                          worklist.analyze(benchmark.arch, fx.system,
                                           fx.candidate.drop));
  }
  const auto warm_result =
      warm.analyze(benchmark.arch, fx.system, fx.candidate.drop);
  {
    SCOPED_TRACE("warm vs sweep");
    expect_same_mc_result(reference, warm_result);
  }
  const auto batch_result = warm_batch.analyze(
      benchmark.arch, fx.system, fx.candidate.drop,
      core::McAnalysis::Mode::kProposed, pool);
  {
    SCOPED_TRACE("warm+batch (pooled) vs sweep");
    expect_same_mc_result(reference, batch_result);
  }
  // The solve count is a pure function of the inputs, not of the kernel
  // configuration (warm/batched solves still count one per scenario).
  EXPECT_EQ(warm_result.scenario_solves, batch_result.scenario_solves);
  EXPECT_EQ(reference.scenario_solves, batch_result.scenario_solves);
}

void run_prepared_level(const benchmarks::Benchmark& benchmark,
                        const CandidateFixture& fx, util::Rng& rng) {
  const PreparedProblem cold(benchmark.arch, fx.system.apps,
                             fx.system.mapping, fx.priorities,
                             BackendArms::with({}, true, false, 1));
  const PreparedProblem hot(benchmark.arch, fx.system.apps, fx.system.mapping,
                            fx.priorities,
                            BackendArms::with({}, true, true,
                                              2 + rng.index(7)));

  const auto bounds_sets =
      scenario_like_bounds(fx.system, 3 + rng.index(8), rng);

  // Capture a warm base on the first (nominal) vector, then solve the rest
  // as one batch against it; reference is a cold scalar solve per vector.
  std::unique_ptr<sched::PreparedAnalysis::WarmBase> base;
  {
    SCOPED_TRACE("solve_capture(nominal)");
    expect_same_result(cold.solve(bounds_sets.front()),
                       hot.solve_capture(bounds_sets.front(), base));
  }
  const std::vector<std::vector<sched::ExecBounds>> scenarios(
      bounds_sets.begin() + 1, bounds_sets.end());
  std::vector<sched::AnalysisResult> batched(scenarios.size());
  hot.solve_many(scenarios, base.get(), batched);
  for (std::size_t k = 0; k < scenarios.size(); ++k) {
    SCOPED_TRACE("scenario " + std::to_string(k));
    expect_same_result(cold.solve(scenarios[k]), batched[k]);
  }
}

TEST(KernelFuzz, FourBackendsBitwiseIdentical) {
  const std::size_t iters = env_size("FTMC_FUZZ_ITERS", 40);
  const std::uint64_t base_seed = env_u64("FTMC_FUZZ_SEED", 2024);
  util::ThreadPool pool(4);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = base_seed + iter;
    SCOPED_TRACE("iteration " + std::to_string(iter) + ", seed " +
                 std::to_string(seed) + " (rerun just this input with " +
                 "FTMC_FUZZ_SEED=" + std::to_string(seed) +
                 " FTMC_FUZZ_ITERS=1)");
    util::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    const benchmarks::Benchmark benchmark = random_benchmark(rng);
    const CandidateFixture fx = make_candidate(benchmark, rng);

    sched::HolisticAnalysis::Options regime;
    regime.bus_contention = rng.chance(0.5);
    regime.precedence_aware = rng.chance(0.8);
    const BackendArms arms(regime, 2 + rng.index(7));

    run_mc_level(benchmark, fx, arms, rng.chance(0.5) ? &pool : nullptr);
    run_prepared_level(benchmark, fx, rng);
    if (::testing::Test::HasFailure()) break;  // one seed is enough to debug
  }

#if !defined(FTMC_OBS_DISABLED)
  // Coverage guard: the random inputs must actually have driven the paths
  // under test, or the bitwise assertions above prove nothing.
  const obs::MetricsSnapshot snapshot = obs::snapshot();
  EXPECT_GT(snapshot.value_of("sched.warmstart.bases"), 0u);
  EXPECT_GT(snapshot.value_of("sched.warmstart.solves"), 0u);
  EXPECT_GT(snapshot.value_of("sched.batch.solves"), 0u);
  EXPECT_GT(snapshot.value_of("sched.batch.lanes"),
            snapshot.value_of("sched.batch.solves"));
#endif
}

// The allocation-free arena construction (sparse edits over the all-critical
// template, dedup on edit slices, contiguous lane materialization) must be a
// pure transport optimization: on every random input, both Proposed and
// Naive results are bitwise identical to the straightforward
// build-a-vector-per-scenario path, with the same solve counts.
TEST(KernelFuzz, ArenaAndRebuildConstructionBitwiseIdentical) {
  const std::size_t iters = env_size("FTMC_FUZZ_ITERS", 40);
  const std::uint64_t base_seed = env_u64("FTMC_FUZZ_SEED", 2024);
  util::ThreadPool pool(4);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = base_seed + iter;
    SCOPED_TRACE("iteration " + std::to_string(iter) + ", seed " +
                 std::to_string(seed) + " (rerun just this input with " +
                 "FTMC_FUZZ_SEED=" + std::to_string(seed) +
                 " FTMC_FUZZ_ITERS=1)");
    util::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 2);
    const benchmarks::Benchmark benchmark = random_benchmark(rng);
    const CandidateFixture fx = make_candidate(benchmark, rng);

    sched::HolisticAnalysis::Options regime;
    regime.bus_contention = rng.chance(0.5);
    regime.precedence_aware = rng.chance(0.8);
    const BackendArms arms(regime, 2 + rng.index(7));

    const core::McAnalysis arena(arms.warm_batch);
    const core::McAnalysis rebuild(
        arms.warm_batch, sched::PriorityPolicy::kRateMonotonic,
        core::McAnalysis::Construction::kRebuild);
    util::ThreadPool* maybe_pool = rng.chance(0.5) ? &pool : nullptr;
    for (const auto mode : {core::McAnalysis::Mode::kProposed,
                            core::McAnalysis::Mode::kNaive}) {
      SCOPED_TRACE(mode == core::McAnalysis::Mode::kProposed ? "proposed"
                                                             : "naive");
      const auto reference = rebuild.analyze(
          benchmark.arch, fx.system, fx.candidate.drop, mode, maybe_pool);
      const auto arena_result = arena.analyze(
          benchmark.arch, fx.system, fx.candidate.drop, mode, maybe_pool);
      expect_same_mc_result(reference, arena_result);
      EXPECT_EQ(reference.scenario_solves, arena_result.scenario_solves);
    }
    if (::testing::Test::HasFailure()) break;  // one seed is enough to debug
  }

#if !defined(FTMC_OBS_DISABLED)
  // Both construction paths must actually have run.
  const obs::MetricsSnapshot snapshot = obs::snapshot();
  EXPECT_GT(snapshot.value_of("analysis.bounds_edits"), 0u);
  EXPECT_GT(snapshot.value_of("analysis.bounds_rebuilds"), 0u);
#endif
}

}  // namespace
