#include "ftmc/util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using ftmc::util::Logger;
using ftmc::util::LogLevel;

/// RAII guard: captures the log sink and restores defaults afterwards.
class CapturedLog {
 public:
  CapturedLog() {
    Logger::instance().set_sink(&stream_);
    previous_level_ = Logger::instance().level();
  }
  ~CapturedLog() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(previous_level_);
  }
  std::string text() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
  LogLevel previous_level_;
};

TEST(Log, LevelsFilterMessages) {
  CapturedLog capture;
  Logger::instance().set_level(LogLevel::kWarn);
  ftmc::util::log_debug("hidden debug");
  ftmc::util::log_info("hidden info");
  ftmc::util::log_warn("visible warn");
  ftmc::util::log_error("visible error");
  const std::string text = capture.text();
  EXPECT_EQ(text.find("hidden"), std::string::npos);
  EXPECT_NE(text.find("[WARN] visible warn"), std::string::npos);
  EXPECT_NE(text.find("[ERROR] visible error"), std::string::npos);
}

TEST(Log, DebugLevelShowsEverything) {
  CapturedLog capture;
  Logger::instance().set_level(LogLevel::kDebug);
  ftmc::util::log_debug("d");
  ftmc::util::log_info("i");
  const std::string text = capture.text();
  EXPECT_NE(text.find("[DEBUG] d"), std::string::npos);
  EXPECT_NE(text.find("[INFO] i"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  CapturedLog capture;
  Logger::instance().set_level(LogLevel::kOff);
  ftmc::util::log_error("nope");
  EXPECT_TRUE(capture.text().empty());
}

TEST(Log, MessagesConcatenateArguments) {
  CapturedLog capture;
  Logger::instance().set_level(LogLevel::kInfo);
  ftmc::util::log_info("value=", 42, " ratio=", 1.5);
  EXPECT_NE(capture.text().find("value=42 ratio=1.5"), std::string::npos);
}

}  // namespace
