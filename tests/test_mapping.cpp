#include "ftmc/model/mapping.hpp"

#include <gtest/gtest.h>

namespace {

using ftmc::model::ApplicationSet;
using ftmc::model::Mapping;
using ftmc::model::ProcessorId;
using ftmc::model::TaskGraphBuilder;
using ftmc::model::TaskRef;

ApplicationSet two_graphs() {
  TaskGraphBuilder a("a");
  a.add_task("a0", 1, 2);
  a.add_task("a1", 1, 2);
  a.period(10).reliability(0.5);
  TaskGraphBuilder b("b");
  b.add_task("b0", 1, 2);
  b.period(10).droppable(1.0);
  std::vector<ftmc::model::TaskGraph> graphs;
  graphs.push_back(a.build());
  graphs.push_back(b.build());
  return ApplicationSet(std::move(graphs));
}

TEST(Mapping, DefaultsToProcessorZero) {
  const ApplicationSet apps = two_graphs();
  const Mapping mapping(apps);
  EXPECT_EQ(mapping.task_count(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(mapping.processor_of_flat(i), ProcessorId{0});
}

TEST(Mapping, AssignByRefAndFlatAgree) {
  const ApplicationSet apps = two_graphs();
  Mapping mapping(apps);
  mapping.assign(apps, TaskRef{1, 0}, ProcessorId{2});
  EXPECT_EQ(mapping.processor_of(apps, TaskRef{1, 0}), ProcessorId{2});
  EXPECT_EQ(mapping.processor_of_flat(2), ProcessorId{2});
  mapping.assign_flat(0, ProcessorId{1});
  EXPECT_EQ(mapping.processor_of(apps, TaskRef{0, 0}), ProcessorId{1});
}

TEST(Mapping, TasksOn) {
  const ApplicationSet apps = two_graphs();
  Mapping mapping(apps);
  mapping.assign(apps, TaskRef{0, 1}, ProcessorId{1});
  const auto on0 = mapping.tasks_on(apps, ProcessorId{0});
  const auto on1 = mapping.tasks_on(apps, ProcessorId{1});
  EXPECT_EQ(on0, (std::vector<TaskRef>{TaskRef{0, 0}, TaskRef{1, 0}}));
  EXPECT_EQ(on1, (std::vector<TaskRef>{TaskRef{0, 1}}));
}

TEST(Mapping, Within) {
  const ApplicationSet apps = two_graphs();
  Mapping mapping(apps);
  EXPECT_TRUE(mapping.within(1));
  mapping.assign_flat(1, ProcessorId{3});
  EXPECT_FALSE(mapping.within(3));
  EXPECT_TRUE(mapping.within(4));
}

TEST(Mapping, EqualityIgnoresProvenance) {
  const ApplicationSet apps = two_graphs();
  Mapping a(apps), b(apps);
  EXPECT_EQ(a, b);
  a.assign_flat(0, ProcessorId{1});
  EXPECT_NE(a, b);
  b.assign_flat(0, ProcessorId{1});
  EXPECT_EQ(a, b);
}

TEST(Mapping, OutOfRangeAccessThrows) {
  const ApplicationSet apps = two_graphs();
  Mapping mapping(apps);
  EXPECT_THROW(mapping.assign_flat(3, ProcessorId{0}), std::out_of_range);
  EXPECT_THROW(mapping.processor_of(apps, TaskRef{2, 0}), std::out_of_range);
}

}  // namespace
