#include "ftmc/core/mc_analysis.hpp"

#include <gtest/gtest.h>

#include "ftmc/sched/holistic.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using core::DropSet;
using core::McAnalysis;
using hardening::HardeningPlan;
using hardening::Technique;
using model::ProcessorId;

hardening::HardenedSystem harden(const model::ApplicationSet& apps,
                                 const HardeningPlan& plan,
                                 std::size_t pes) {
  std::vector<ProcessorId> mapping(apps.task_count());
  for (std::size_t i = 0; i < mapping.size(); ++i)
    mapping[i] = ProcessorId{static_cast<std::uint32_t>(i % pes)};
  return hardening::apply_hardening(apps, plan, mapping, pes);
}

TEST(DropSetValidation, RejectsBadSets) {
  const auto apps = fixtures::small_mixed_apps();
  EXPECT_THROW(core::validate_drop_set(apps, DropSet{}),
               std::invalid_argument);
  // Graph 0 is critical.
  EXPECT_THROW(core::validate_drop_set(apps, DropSet{true, false}),
               std::invalid_argument);
  EXPECT_NO_THROW(core::validate_drop_set(apps, DropSet{false, true}));
}

TEST(McAnalysis, NoTriggersMeansNormalOnly) {
  const auto apps = fixtures::small_mixed_apps();
  const auto system = harden(apps, HardeningPlan(apps.task_count()), 2);
  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);
  const auto result =
      analysis.analyze(fixtures::test_arch(2), system, {false, false});
  EXPECT_EQ(result.scenario_count, 0u);
  for (std::size_t i = 0; i < result.wcrt.size(); ++i)
    EXPECT_EQ(result.wcrt[i], result.normal.windows[i].max_finish);
  EXPECT_TRUE(result.schedulable());
}

TEST(McAnalysis, OneScenarioPerTrigger) {
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 1;
  plan[1].technique = Technique::kReexecution;
  plan[1].reexecutions = 1;
  const auto arch = fixtures::test_arch(3);
  auto system = harden(apps, plan, 3);
  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);
  auto result = analysis.analyze(arch, system, {false, true});
  EXPECT_EQ(result.scenario_count, 2u);

  // Adding a passive replication adds one more trigger (its standby).
  plan[2] = {};
  plan[2].technique = Technique::kPassiveReplication;
  plan[2].replica_pes = {ProcessorId{0}, ProcessorId{1}, ProcessorId{2}};
  plan[2].voter_pe = ProcessorId{0};
  system = harden(apps, plan, 3);
  result = analysis.analyze(arch, system, {false, true});
  EXPECT_EQ(result.scenario_count, 3u);
}

TEST(McAnalysis, WcrtCoversNormalState) {
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 2;
  const auto system = harden(apps, plan, 2);
  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);
  const auto result =
      analysis.analyze(fixtures::test_arch(2), system, {false, false});
  for (std::size_t i = 0; i < result.wcrt.size(); ++i)
    EXPECT_GE(result.wcrt[i], result.normal.windows[i].max_finish);
}

TEST(McAnalysis, FaultInflatesTriggerTaskBound) {
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan none(apps.task_count());
  HardeningPlan reexec(apps.task_count());
  reexec[0].technique = Technique::kReexecution;
  reexec[0].reexecutions = 2;
  const auto arch = fixtures::test_arch(2);
  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);
  const auto base =
      analysis.analyze(arch, harden(apps, none, 2), {false, false});
  const auto hardened =
      analysis.analyze(arch, harden(apps, reexec, 2), {false, false});
  // Re-executions make the worst case strictly worse for the trigger task.
  EXPECT_GT(hardened.wcrt[0], base.wcrt[0]);
}

TEST(McAnalysis, NaiveIsAtLeastAsPessimisticAsProposed) {
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 1;
  plan[1].technique = Technique::kReexecution;
  plan[1].reexecutions = 1;
  const auto arch = fixtures::test_arch(2);
  const auto system = harden(apps, plan, 2);
  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);
  const DropSet drop{false, true};
  const auto proposed =
      analysis.analyze(arch, system, drop, McAnalysis::Mode::kProposed);
  const auto naive =
      analysis.analyze(arch, system, drop, McAnalysis::Mode::kNaive);
  for (std::uint32_t g = 0; g < system.apps.graph_count(); ++g) {
    const model::GraphId id{g};
    EXPECT_GE(naive.graph_wcrt(system.apps, id),
              proposed.graph_wcrt(system.apps, id))
        << "graph " << g;
  }
}

TEST(McAnalysis, DroppingRescuesOverloadedSystem) {
  // One PE; critical graph + droppable load that only fits while no fault
  // occurs.  With re-execution of the critical tasks, keeping the droppable
  // graph makes the critical state unschedulable; dropping it rescues.
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("crit", 2, 150, 200, 1000, false, 1e-6));
  graphs.push_back(
      fixtures::chain_graph("load", 2, 150, 150, 1000, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 1;
  plan[1].technique = Technique::kReexecution;
  plan[1].reexecutions = 1;
  const auto arch = fixtures::test_arch(1);
  const auto system = harden(apps, plan, 1);
  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);

  const auto keeping = analysis.analyze(arch, system, {false, false});
  const auto dropping = analysis.analyze(arch, system, {false, true});
  EXPECT_TRUE(keeping.normal_schedulable);
  EXPECT_FALSE(keeping.critical_schedulable);
  EXPECT_TRUE(dropping.normal_schedulable);
  EXPECT_TRUE(dropping.critical_schedulable);
}

TEST(McAnalysis, TasksFinishedBeforeTriggerKeepNominalBounds) {
  // Chain a->b on one PE, re-executable b (trigger).  An unrelated earlier
  // task cannot be pushed by b's fault if it always completes before b can
  // start; its WCRT must equal the normal-state bound.
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("early", 1, 10, 20, 1000, false, 1e-6));
  graphs.push_back(
      fixtures::chain_graph("late", 2, 400, 450, 1000, false, 1e-6));
  const model::ApplicationSet apps{std::move(graphs)};
  HardeningPlan plan(apps.task_count());
  // Harden the *second* task of "late": it cannot start before 400.
  plan[2].technique = Technique::kReexecution;
  plan[2].reexecutions = 1;
  const auto arch = fixtures::test_arch(1);
  const auto system = harden(apps, plan, 1);
  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);
  const auto result = analysis.analyze(arch, system, {false, false});
  // "early" outranks (shorter... same period; graph order) — in any case it
  // completes long before task late#1 can start, so its WCRT bound stays at
  // the normal-state value.
  EXPECT_EQ(result.wcrt[0], result.normal.windows[0].max_finish);
}

TEST(McAnalysis, DroppedGraphBoundsAreNotGuaranteed) {
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 1;
  const auto arch = fixtures::test_arch(1);
  const auto system = harden(apps, plan, 1);
  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);
  const auto result = analysis.analyze(arch, system, {false, true});
  // The schedulability verdict ignores the dropped graph even if its own
  // bound exceeds its deadline; the critical graph decides.
  EXPECT_TRUE(result.schedulable());
}

}  // namespace
