// Tests for the Monte-Carlo response-time distribution aggregates.
#include <gtest/gtest.h>

#include "ftmc/sched/priority.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;

struct Rig {
  model::Architecture arch = fixtures::test_arch(2);
  model::ApplicationSet apps = fixtures::small_mixed_apps();
  hardening::HardenedSystem system = make_system(apps);
  core::DropSet drop{false, true};
  std::vector<std::uint32_t> priorities =
      sched::assign_priorities(system.apps);

  static hardening::HardenedSystem make_system(
      const model::ApplicationSet& apps) {
    hardening::HardeningPlan plan(apps.task_count());
    plan[0].technique = hardening::Technique::kReexecution;
    plan[0].reexecutions = 1;
    std::vector<model::ProcessorId> mapping(apps.task_count(),
                                            model::ProcessorId{0});
    mapping[2] = model::ProcessorId{1};
    mapping[3] = model::ProcessorId{1};
    return hardening::apply_hardening(apps, plan, mapping, 2);
  }
};

sim::MonteCarloResult run(const Rig& rig, double fault_probability) {
  sim::MonteCarloOptions options;
  options.profiles = 300;
  options.seed = 9;
  options.fault_probability = fault_probability;
  options.threads = 2;
  return sim::monte_carlo_wcrt(rig.arch, rig.system, rig.drop,
                               rig.priorities, options);
}

TEST(McDistribution, OrderStatisticsAreOrdered) {
  const Rig rig;
  const auto result = run(rig, 0.3);
  ASSERT_EQ(result.distribution.size(), 2u);
  for (const auto& dist : result.distribution) {
    if (dist.observations == 0) continue;
    EXPECT_LE(dist.min, static_cast<model::Time>(dist.mean));
    EXPECT_LE(static_cast<model::Time>(dist.mean), dist.max);
    EXPECT_LE(dist.p95, dist.p99 + 1);
    EXPECT_LE(dist.p99, dist.max);
    EXPECT_GE(dist.min, 0);
  }
}

TEST(McDistribution, MaxMatchesWorstResponse) {
  const Rig rig;
  const auto result = run(rig, 0.4);
  for (std::size_t g = 0; g < result.distribution.size(); ++g) {
    if (result.distribution[g].observations == 0) continue;
    EXPECT_EQ(result.distribution[g].max, result.worst_response[g]);
  }
}

TEST(McDistribution, ObservationsPlusDroppedEqualsProfiles) {
  const Rig rig;
  const auto result = run(rig, 0.6);
  for (const auto& dist : result.distribution)
    EXPECT_EQ(dist.observations + dist.dropped, result.profiles);
}

TEST(McDistribution, CriticalGraphNeverDropped) {
  const Rig rig;
  const auto result = run(rig, 0.8);
  EXPECT_EQ(result.distribution[0].dropped, 0u);
  EXPECT_EQ(result.distribution[0].observations, result.profiles);
}

TEST(McDistribution, HigherFaultRateDropsMoreOften) {
  const Rig rig;
  const auto calm = run(rig, 0.05);
  const auto stormy = run(rig, 0.9);
  // Graph 1 is droppable: more faults -> more critical-state entries ->
  // more dropped instances.
  EXPECT_GT(stormy.distribution[1].dropped, calm.distribution[1].dropped);
}

TEST(McDistribution, ZeroFaultsMeansDegenerateDistribution) {
  const Rig rig;
  sim::MonteCarloOptions options;
  options.profiles = 50;
  options.seed = 4;
  options.fault_probability = 0.0;
  const auto result = sim::monte_carlo_wcrt(rig.arch, rig.system, rig.drop,
                                            rig.priorities, options);
  for (const auto& dist : result.distribution) {
    EXPECT_EQ(dist.dropped, 0u);
    EXPECT_EQ(dist.deadline_misses, 0u);
  }
}

}  // namespace
