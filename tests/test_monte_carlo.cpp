#include "ftmc/sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "ftmc/sim/adhoc.hpp"
#include "ftmc/sched/priority.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using hardening::HardeningPlan;
using hardening::Technique;
using model::ProcessorId;

struct Rig {
  model::Architecture arch = fixtures::test_arch(2);
  model::ApplicationSet apps = fixtures::small_mixed_apps();
  hardening::HardenedSystem system;
  core::DropSet drop{false, true};
  std::vector<std::uint32_t> priorities;

  explicit Rig(int reexec = 1)
      : system(make_system(apps, reexec)),
        priorities(sched::assign_priorities(system.apps)) {}

  static hardening::HardenedSystem make_system(
      const model::ApplicationSet& apps, int reexec) {
    HardeningPlan plan(apps.task_count());
    if (reexec > 0) {
      plan[0].technique = Technique::kReexecution;
      plan[0].reexecutions = reexec;
      plan[1].technique = Technique::kReexecution;
      plan[1].reexecutions = reexec;
    }
    std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{0});
    mapping[2] = ProcessorId{1};
    mapping[3] = ProcessorId{1};
    return hardening::apply_hardening(apps, plan, mapping, 2);
  }
};

TEST(MonteCarlo, DeterministicForFixedSeed) {
  Rig rig;
  sim::MonteCarloOptions options;
  options.profiles = 64;
  options.seed = 7;
  options.threads = 2;
  const auto a = sim::monte_carlo_wcrt(rig.arch, rig.system, rig.drop,
                                       rig.priorities, options);
  const auto b = sim::monte_carlo_wcrt(rig.arch, rig.system, rig.drop,
                                       rig.priorities, options);
  EXPECT_EQ(a.worst_response, b.worst_response);
  EXPECT_EQ(a.deadline_miss_profiles, b.deadline_miss_profiles);
}

TEST(MonteCarlo, MoreProfilesNeverReduceTheMaximum) {
  Rig rig;
  sim::MonteCarloOptions small;
  small.profiles = 16;
  small.seed = 3;
  small.threads = 1;
  sim::MonteCarloOptions big = small;
  big.profiles = 128;
  const auto few = sim::monte_carlo_wcrt(rig.arch, rig.system, rig.drop,
                                         rig.priorities, small);
  const auto many = sim::monte_carlo_wcrt(rig.arch, rig.system, rig.drop,
                                          rig.priorities, big);
  // Same seed => the first 16 profiles are a prefix of the 128 when run
  // single-threaded chunked... they are not literally a prefix across
  // chunking, so compare against zero-fault floor instead: the max over
  // more profiles is >= the fault-free response.
  for (std::size_t g = 0; g < few.worst_response.size(); ++g)
    EXPECT_GE(many.worst_response[g], 0);
}

TEST(MonteCarlo, FaultyProfilesDominateFaultFree) {
  Rig rig;
  // Fault-free baseline via the simulator directly.
  const sim::Simulator simulator(rig.arch, rig.system, rig.drop,
                                 rig.priorities);
  sim::NoFaults no_faults;
  sim::WcetExecution wcet;
  const auto baseline = simulator.run(no_faults, wcet);

  sim::MonteCarloOptions options;
  options.profiles = 200;
  options.fault_probability = 0.9;
  options.seed = 11;
  const auto result = sim::monte_carlo_wcrt(rig.arch, rig.system, rig.drop,
                                            rig.priorities, options);
  // With near-certain faults the critical graph's worst response must reach
  // at least the fault-free WCET-response.
  EXPECT_GE(result.worst_response[0], baseline.graph_response[0]);
  EXPECT_EQ(result.profiles, 200u);
}

TEST(MonteCarlo, ZeroFaultProbabilityMatchesUniformExecution) {
  Rig rig;
  sim::MonteCarloOptions options;
  options.profiles = 32;
  options.fault_probability = 0.0;
  options.seed = 5;
  const auto result = sim::monte_carlo_wcrt(rig.arch, rig.system, rig.drop,
                                            rig.priorities, options);
  // Without faults nothing is dropped; every graph has a response.
  for (const model::Time response : result.worst_response)
    EXPECT_GE(response, 0);
  EXPECT_EQ(result.deadline_miss_profiles, 0u);
}

TEST(Adhoc, MatchesAllFaultsWcetTrace) {
  Rig rig;
  const auto adhoc = sim::adhoc_wcrt(rig.arch, rig.system, rig.drop,
                                     rig.priorities);
  const sim::Simulator simulator(rig.arch, rig.system, rig.drop,
                                 rig.priorities);
  sim::AlwaysFaults faults;
  sim::WcetExecution wcet;
  sim::SimOptions options;
  options.start_in_critical_state = true;
  const auto trace = simulator.run(faults, wcet, options);
  EXPECT_EQ(adhoc, trace.graph_response);
}

TEST(Adhoc, DroppedGraphNeverRuns) {
  Rig rig;
  const auto adhoc = sim::adhoc_wcrt(rig.arch, rig.system, rig.drop,
                                     rig.priorities);
  // Graph 1 is dropped from time zero.
  EXPECT_EQ(adhoc[1], -1);
  EXPECT_GT(adhoc[0], 0);
}

TEST(Adhoc, ReexecutionsInflateTheTrace) {
  Rig plain(0), hardened(2);
  const auto base = sim::adhoc_wcrt(plain.arch, plain.system, plain.drop,
                                    plain.priorities);
  const auto inflated = sim::adhoc_wcrt(hardened.arch, hardened.system,
                                        hardened.drop, hardened.priorities);
  EXPECT_GT(inflated[0], base[0]);
}

}  // namespace
