#include "ftmc/core/objectives.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace {

using namespace ftmc;
using core::Allocation;
using hardening::HardeningPlan;
using hardening::Technique;
using model::ProcessorId;

hardening::HardenedSystem harden(const model::ApplicationSet& apps,
                                 const HardeningPlan& plan,
                                 const std::vector<ProcessorId>& mapping,
                                 std::size_t pes) {
  return hardening::apply_hardening(apps, plan, mapping, pes);
}

TEST(Utilization, PlainTasksUseWcetOverPeriod) {
  const auto arch = fixtures::test_arch(2);
  const auto apps = fixtures::small_mixed_apps(/*period=*/1000);
  // crit: 2x wcet 100; drop: 2x wcet 60.  All on PE 0.
  const std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{0});
  const auto system = harden(apps, HardeningPlan(apps.task_count()), mapping, 2);
  const auto utilization = core::expected_utilization(arch, system);
  EXPECT_NEAR(utilization[0], (100.0 + 100.0 + 60.0 + 60.0) / 1000.0, 1e-12);
  EXPECT_EQ(utilization[1], 0.0);
}

TEST(Utilization, ReexecutionAddsExpectedAttempts) {
  const auto arch = fixtures::test_arch(1);
  const auto apps = fixtures::small_mixed_apps(1000);
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 2;
  const std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{0});
  const auto base =
      core::expected_utilization(arch, harden(apps, HardeningPlan(apps.task_count()), mapping, 1));
  const auto hardened =
      core::expected_utilization(arch, harden(apps, plan, mapping, 1));
  // dt = 2 is charged every attempt; expected extra attempts are tiny
  // (pf ~ 1e-6) but the detection overhead alone raises utilization.
  EXPECT_GT(hardened[0], base[0]);
  const double pf = hardening::execution_failure_probability(
      arch.processor(ProcessorId{0}), 102);
  const double expected =
      base[0] - 100.0 / 1000.0 +
      102.0 * hardening::expected_reexecution_count(pf, 2) / 1000.0;
  EXPECT_NEAR(hardened[0], expected, 1e-9);
}

TEST(Utilization, ActiveReplicasChargeEveryPe) {
  const auto arch = fixtures::test_arch(3);
  const auto apps = fixtures::small_mixed_apps(1000);
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kActiveReplication;
  plan[0].replica_pes = {ProcessorId{0}, ProcessorId{1}, ProcessorId{2}};
  plan[0].voter_pe = ProcessorId{1};
  std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{0});
  const auto utilization =
      core::expected_utilization(arch, harden(apps, plan, mapping, 3));
  // Replica of task 0 (wcet 100) on each PE; voter (ve 3) on PE 1; the
  // remaining tasks (wcet 100 + 60 + 60) on PE 0.
  EXPECT_NEAR(utilization[0], (100.0 + 100.0 + 60.0 + 60.0) / 1000.0, 1e-12);
  EXPECT_NEAR(utilization[1], (100.0 + 3.0) / 1000.0, 1e-12);
  EXPECT_NEAR(utilization[2], 100.0 / 1000.0, 1e-12);
}

TEST(Utilization, PassiveStandbyChargedByActivationProbability) {
  const auto arch = fixtures::test_arch(3);
  const auto apps = fixtures::small_mixed_apps(1000);
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kPassiveReplication;
  plan[0].replica_pes = {ProcessorId{0}, ProcessorId{1}, ProcessorId{2}};
  plan[0].voter_pe = ProcessorId{0};
  std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{0});
  const auto utilization =
      core::expected_utilization(arch, harden(apps, plan, mapping, 3));
  const double pf = hardening::execution_failure_probability(
      arch.processor(ProcessorId{0}), 100);
  const double activation = hardening::standby_activation_probability(pf, pf);
  // PE 2 hosts only the standby.
  EXPECT_NEAR(utilization[2], activation * 100.0 / 1000.0, 1e-15);
  EXPECT_GT(utilization[2], 0.0);
  EXPECT_LT(utilization[2], 100.0 / 1000.0);
}

TEST(Power, SumsAllocatedPesOnly) {
  const auto arch = fixtures::test_arch(3);  // stat 10, dyn 40 each
  const auto apps = fixtures::small_mixed_apps(1000);
  const std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{0});
  const auto system =
      harden(apps, HardeningPlan(apps.task_count()), mapping, 3);
  const double u0 = (100.0 + 100.0 + 60.0 + 60.0) / 1000.0;

  Allocation alloc{true, false, false};
  EXPECT_NEAR(core::expected_power(arch, system, alloc), 10.0 + 40.0 * u0,
              1e-9);
  // Allocating an idle PE adds only its static power.
  alloc = {true, true, false};
  EXPECT_NEAR(core::expected_power(arch, system, alloc), 20.0 + 40.0 * u0,
              1e-9);
}

TEST(Power, RejectsUnallocatedUse) {
  const auto arch = fixtures::test_arch(2);
  const auto apps = fixtures::small_mixed_apps(1000);
  const std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{1});
  const auto system =
      harden(apps, HardeningPlan(apps.task_count()), mapping, 2);
  EXPECT_THROW(core::expected_power(arch, system, Allocation{true, false}),
               std::invalid_argument);
  EXPECT_THROW(core::expected_power(arch, system, Allocation{true}),
               std::invalid_argument);
}

TEST(Power, AllocationFromMapping) {
  const auto arch = fixtures::test_arch(3);
  const auto apps = fixtures::small_mixed_apps(1000);
  std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{0});
  mapping[1] = ProcessorId{2};
  const auto system =
      harden(apps, HardeningPlan(apps.task_count()), mapping, 3);
  const Allocation allocation = core::allocation_from_mapping(arch, system);
  EXPECT_EQ(allocation, (Allocation{true, false, true}));
}

TEST(Service, SumsAliveDroppableGraphs) {
  const auto apps = fixtures::small_mixed_apps();  // drop graph sv = 2
  EXPECT_DOUBLE_EQ(core::service_value(apps, {false, false}), 2.0);
  EXPECT_DOUBLE_EQ(core::service_value(apps, {false, true}), 0.0);
  EXPECT_DOUBLE_EQ(core::max_service_value(apps), 2.0);
}

TEST(Service, IgnoresCriticalGraphs) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("c", 1, 1, 2, 10, false, 1e-6));
  graphs.push_back(fixtures::chain_graph("d1", 1, 1, 2, 10, true, 3.0));
  graphs.push_back(fixtures::chain_graph("d2", 1, 1, 2, 10, true, 5.0));
  const model::ApplicationSet apps{std::move(graphs)};
  EXPECT_DOUBLE_EQ(core::service_value(apps, {false, false, false}), 8.0);
  EXPECT_DOUBLE_EQ(core::service_value(apps, {false, true, false}), 5.0);
  EXPECT_DOUBLE_EQ(core::service_value(apps, {false, true, true}), 0.0);
}

TEST(Service, SizeValidation) {
  const auto apps = fixtures::small_mixed_apps();
  EXPECT_THROW(core::service_value(apps, {false}), std::invalid_argument);
}

}  // namespace
