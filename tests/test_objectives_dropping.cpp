// Tests for the critical-state-aware power model: transition probability and
// the expected-utilization discount of dropped applications.
#include <gtest/gtest.h>

#include "ftmc/core/objectives.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using hardening::HardeningPlan;
using hardening::Technique;
using model::ProcessorId;

hardening::HardenedSystem make_system(const model::ApplicationSet& apps,
                                      const HardeningPlan& plan,
                                      std::size_t pes) {
  std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{0});
  return hardening::apply_hardening(apps, plan, mapping, pes);
}

TEST(CriticalStateProbability, ZeroWithoutTriggers) {
  const auto arch = fixtures::test_arch(1);
  const auto apps = fixtures::small_mixed_apps();
  const auto system =
      make_system(apps, HardeningPlan(apps.task_count()), 1);
  EXPECT_DOUBLE_EQ(core::critical_state_probability(arch, system), 0.0);
}

TEST(CriticalStateProbability, MatchesSingleTriggerFormula) {
  const auto arch = fixtures::test_arch(1);
  const auto apps = fixtures::small_mixed_apps(/*period=*/1000);
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 1;
  const auto system = make_system(apps, plan, 1);
  // One trigger, one instance per hyperperiod: p = pf(wcet + dt).
  const double pf = hardening::execution_failure_probability(
      arch.processor(ProcessorId{0}), 102);
  EXPECT_NEAR(core::critical_state_probability(arch, system), pf, 1e-15);
}

TEST(CriticalStateProbability, MoreTriggersRaiseTheProbability) {
  const auto arch = fixtures::test_arch(1);
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan one(apps.task_count());
  one[0].technique = Technique::kReexecution;
  one[0].reexecutions = 1;
  HardeningPlan two = one;
  two[1].technique = Technique::kReexecution;
  two[1].reexecutions = 1;
  EXPECT_LT(core::critical_state_probability(arch, make_system(apps, one, 1)),
            core::critical_state_probability(arch, make_system(apps, two, 1)));
}

TEST(CriticalStateProbability, PassiveStandbyCountsAsTrigger) {
  const auto arch = fixtures::test_arch(3);
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kPassiveReplication;
  plan[0].replica_pes = {ProcessorId{0}, ProcessorId{1}, ProcessorId{2}};
  plan[0].voter_pe = ProcessorId{0};
  std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{0});
  const auto system = hardening::apply_hardening(apps, plan, mapping, 3);
  EXPECT_GT(core::critical_state_probability(arch, system), 0.0);
}

TEST(DropAwarePower, DroppingReducesExpectedPower) {
  const auto arch = fixtures::test_arch(1);
  const auto apps = fixtures::small_mixed_apps();
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;  // a trigger must exist
  plan[0].reexecutions = 1;
  const auto system = make_system(apps, plan, 1);
  const core::Allocation allocation{true};
  const std::vector<bool> keep{false, false};
  const std::vector<bool> drop{false, true};
  const double base = core::expected_power(arch, system, allocation, &keep);
  const double dropped = core::expected_power(arch, system, allocation, &drop);
  EXPECT_LT(dropped, base);
  // The saving is bounded by half the dropped app's dynamic power share.
  EXPECT_GT(dropped, base - 0.5 * 40.0 * (60.0 + 60.0) / 1000.0);
}

TEST(DropAwarePower, NoTriggersMeansNoDiscount) {
  const auto arch = fixtures::test_arch(1);
  const auto apps = fixtures::small_mixed_apps();
  const auto system =
      make_system(apps, HardeningPlan(apps.task_count()), 1);
  const core::Allocation allocation{true};
  const std::vector<bool> keep{false, false};
  const std::vector<bool> drop{false, true};
  EXPECT_DOUBLE_EQ(core::expected_power(arch, system, allocation, &keep),
                   core::expected_power(arch, system, allocation, &drop));
}

TEST(DropAwarePower, NullDropBehavesLikeLegacyOverload) {
  const auto arch = fixtures::test_arch(2);
  const auto apps = fixtures::small_mixed_apps();
  const auto system =
      make_system(apps, HardeningPlan(apps.task_count()), 2);
  const core::Allocation allocation{true, true};
  EXPECT_DOUBLE_EQ(core::expected_power(arch, system, allocation),
                   core::expected_power(arch, system, allocation, nullptr));
}

TEST(DropAwarePower, DropSizeValidated) {
  const auto arch = fixtures::test_arch(1);
  const auto apps = fixtures::small_mixed_apps();
  const auto system =
      make_system(apps, HardeningPlan(apps.task_count()), 1);
  const std::vector<bool> bad{false};
  EXPECT_THROW(core::expected_utilization(arch, system, &bad),
               std::invalid_argument);
}

}  // namespace
