// Observability layer: metrics registry semantics under concurrency, span
// tracing + Chrome-trace export shape, and the differential guarantee that
// telemetry never changes results.
#include "ftmc/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/dse/ga.hpp"
#include "ftmc/obs/export.hpp"
#include "ftmc/obs/json.hpp"
#include "ftmc/obs/sampler.hpp"
#include "ftmc/obs/trace.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "ftmc/util/stats.hpp"
#include "ftmc/util/thread_pool.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to validate exporter output and walk the
// trace-event array.  Throws std::runtime_error on malformed input, so a
// test failure pinpoints the first bad byte.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json error at byte " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue value;
      value.kind = JsonValue::Kind::kString;
      value.string = parse_string();
      return value;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out += "\\u";  // keep raw; tests never compare escaped content
            out.append(text_, pos_, 4);
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected value");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::stod(text_.substr(start, pos_ - start));
    return value;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return value;
    while (true) {
      value.array.push_back(parse_value());
      skip_ws();
      if (consume(']')) return value;
      expect(',');
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return value;
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.object[std::move(key)] = parse_value();
      skip_ws();
      if (consume('}')) return value;
      expect(',');
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

#if !defined(FTMC_OBS_DISABLED)

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsRegistry, CounterMergesThreadPoolIncrements) {
  obs::reset();
  constexpr std::size_t kTasks = 512;
  constexpr std::uint64_t kDelta = 3;
  util::ThreadPool pool(4);
  pool.parallel_for(kTasks, [](std::size_t) {
    // Per-call handle construction exercises idempotent registration; real
    // hot paths hoist the handle into a function-local static.
    obs::Counter counter("test.pool_counter");
    counter.add(kDelta);
  });
  const auto snap = obs::snapshot();
  EXPECT_EQ(snap.value_of("test.pool_counter"), kTasks * kDelta);
}

TEST(MetricsRegistry, CountsSurviveThreadExit) {
  obs::reset();
  {
    // Shards of exited workers must drain into the retired accumulator.
    util::ThreadPool pool(3);
    pool.parallel_for(64, [](std::size_t) {
      obs::Counter counter("test.retired_counter");
      counter.add(1);
    });
  }  // pool joins here
  EXPECT_EQ(obs::snapshot().value_of("test.retired_counter"), 64u);
}

TEST(MetricsRegistry, GaugeLastWriterWins) {
  obs::reset();
  obs::Gauge gauge("test.gauge");
  gauge.set(41);
  gauge.add(1);
  EXPECT_EQ(obs::snapshot().value_of("test.gauge"), 42u);
  gauge.set(7);
  EXPECT_EQ(obs::snapshot().value_of("test.gauge"), 7u);
}

TEST(MetricsRegistry, HistogramBucketsCountAndSum) {
  obs::reset();
  obs::Histogram histogram("test.hist");
  histogram.record(0);    // bucket 0
  histogram.record(1);    // bucket 1
  histogram.record(5);    // bucket 3: [4, 8)
  histogram.record(7);    // bucket 3
  histogram.record(800);  // bucket 10: [512, 1024)
  const auto snap = obs::snapshot();
  const auto* metric = snap.find("test.hist");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(metric->value, 5u);
  EXPECT_EQ(metric->sum, 813u);
  ASSERT_GE(metric->buckets.size(), 11u);
  EXPECT_EQ(metric->buckets[0], 1u);
  EXPECT_EQ(metric->buckets[1], 1u);
  EXPECT_EQ(metric->buckets[3], 2u);
  EXPECT_EQ(metric->buckets[10], 1u);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistration) {
  obs::reset();
  obs::Counter counter("test.reset_counter");
  counter.add(9);
  obs::reset();
  const auto snap = obs::snapshot();
  const auto* metric = snap.find("test.reset_counter");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->value, 0u);
  counter.add(2);
  EXPECT_EQ(obs::snapshot().value_of("test.reset_counter"), 2u);
}

TEST(MetricsExport, SchemaRoundTripsThroughJson) {
  obs::reset();
  obs::Counter counter("test.export_counter");
  counter.add(5);
  obs::Gauge gauge("test.export_gauge");
  gauge.set(11);
  obs::Histogram histogram("test.export_hist");
  histogram.record(6);
  std::ostringstream out;
  obs::write_metrics_json(out);
  const JsonValue doc = JsonReader(out.str()).parse();
  EXPECT_EQ(doc.at("schema").string, "ftmc.metrics.v1");
  EXPECT_EQ(doc.at("counters").at("test.export_counter").number, 5.0);
  EXPECT_EQ(doc.at("gauges").at("test.export_gauge").number, 11.0);
  const JsonValue& hist = doc.at("histograms").at("test.export_hist");
  EXPECT_EQ(hist.at("count").number, 1.0);
  EXPECT_EQ(hist.at("sum").number, 6.0);
  ASSERT_EQ(hist.at("buckets").array.size(), 4u);  // trailing zeros trimmed
  EXPECT_EQ(hist.at("buckets").array[3].number, 1.0);
}

// ---------------------------------------------------------------------------
// Histogram quantiles.  The log2 buckets retain no raw samples, so
// MetricsSnapshot::quantile interpolates within a power-of-two bucket: the
// estimate must land within the true sample's bucket — i.e. within a factor
// of two of the exact percentile — and be monotone in q.

TEST(MetricsQuantile, TracksExactPercentilesWithinBucketResolution) {
  obs::reset();
  obs::Histogram histogram("test.quantile_hist");
  std::mt19937_64 rng(12345);
  std::uniform_int_distribution<std::uint64_t> dist(1, 200000);
  std::vector<double> samples;
  samples.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t sample = dist(rng);
    histogram.record(sample);
    samples.push_back(static_cast<double>(sample));
  }
  std::sort(samples.begin(), samples.end());
  const auto snap = obs::snapshot();
  double previous = 0.0;
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double exact = util::percentile_sorted(samples, q);
    const double estimate = snap.quantile("test.quantile_hist", q);
    EXPECT_GE(estimate, exact / 2.0) << "q=" << q;
    EXPECT_LE(estimate, exact * 2.0) << "q=" << q;
    EXPECT_GE(estimate, previous) << "quantile must be monotone in q";
    previous = estimate;
  }
}

TEST(MetricsQuantile, StaysInsideTheOnlyOccupiedBucket) {
  obs::reset();
  obs::Histogram histogram("test.quantile_single");
  for (int i = 0; i < 7; ++i) histogram.record(6);  // bucket 3: [4, 8)
  const auto snap = obs::snapshot();
  for (const double q : {0.0, 0.5, 1.0}) {
    const double estimate = snap.quantile("test.quantile_single", q);
    EXPECT_GE(estimate, 4.0);
    EXPECT_LE(estimate, 8.0);
  }
}

TEST(MetricsQuantile, ZeroSamplesLandInBucketZero) {
  obs::reset();
  obs::Histogram histogram("test.quantile_zero");
  histogram.record(0);
  histogram.record(0);
  EXPECT_EQ(obs::snapshot().quantile("test.quantile_zero", 0.5), 0.0);
}

TEST(MetricsQuantile, MissingEmptyOrNonHistogramYieldsZero) {
  obs::reset();
  obs::Counter counter("test.quantile_counter");
  counter.add(5);
  obs::Histogram histogram("test.quantile_empty");
  const auto snap = obs::snapshot();
  EXPECT_EQ(snap.quantile("test.no_such_metric", 0.5), 0.0);
  EXPECT_EQ(snap.quantile("test.quantile_counter", 0.5), 0.0);
  EXPECT_EQ(snap.quantile("test.quantile_empty", 0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Prometheus exposition.

TEST(MetricsExport, PrometheusExpositionShape) {
  obs::reset();
  obs::Counter counter("test.prom_counter");
  counter.add(5);
  obs::Gauge gauge("test.prom_gauge");
  gauge.set(11);
  obs::Histogram histogram("test.prom_hist");
  histogram.record(0);  // bucket 0 (le="0")
  histogram.record(1);  // bucket 1 (le="1")
  histogram.record(6);  // bucket 3 (le="7")
  const std::string text = obs::prometheus_text(obs::snapshot());
  const auto has = [&text](const std::string& line) {
    return text.find(line) != std::string::npos;
  };
  EXPECT_TRUE(has("# TYPE ftmc_test_prom_counter counter"));
  EXPECT_TRUE(has("ftmc_test_prom_counter 5\n"));
  EXPECT_TRUE(has("# TYPE ftmc_test_prom_gauge gauge"));
  EXPECT_TRUE(has("ftmc_test_prom_gauge 11\n"));
  EXPECT_TRUE(has("# TYPE ftmc_test_prom_hist histogram"));
  EXPECT_TRUE(has("ftmc_test_prom_hist_bucket{le=\"0\"} 1\n"));
  EXPECT_TRUE(has("ftmc_test_prom_hist_bucket{le=\"1\"} 2\n"));
  EXPECT_TRUE(has("ftmc_test_prom_hist_bucket{le=\"3\"} 2\n"));  // cumulative
  EXPECT_TRUE(has("ftmc_test_prom_hist_bucket{le=\"7\"} 3\n"));
  EXPECT_TRUE(has("ftmc_test_prom_hist_bucket{le=\"+Inf\"} 3\n"));
  EXPECT_TRUE(has("ftmc_test_prom_hist_sum 7\n"));
  EXPECT_TRUE(has("ftmc_test_prom_hist_count 3\n"));
}

// ---------------------------------------------------------------------------
// Time-series sampler.  interval_ms = 0 keeps the background thread off so
// sample_now() drives the ring deterministically.

TEST(Sampler, DeltasAgainstConstructionBaseline) {
  obs::reset();
  obs::Counter counter("test.sampler_counter");
  counter.add(10);  // pre-baseline traffic must not appear in any delta
  obs::TimeSeriesSampler::Options options;
  options.interval_ms = 0;
  obs::TimeSeriesSampler sampler(options);
  counter.add(5);
  sampler.sample_now();
  EXPECT_EQ(sampler.window().delta.value_of("test.sampler_counter"), 5u);
  counter.add(7);
  sampler.sample_now();
  const auto window = sampler.window();
  EXPECT_EQ(window.samples, 2u);
  EXPECT_EQ(window.delta.value_of("test.sampler_counter"), 12u);
  EXPECT_GE(window.rate("test.sampler_counter"), 0.0);
}

TEST(Sampler, RingEvictsOldestPastCapacity) {
  obs::reset();
  obs::Counter counter("test.sampler_ring");
  obs::TimeSeriesSampler::Options options;
  options.interval_ms = 0;
  options.capacity = 3;
  obs::TimeSeriesSampler sampler(options);
  for (int i = 0; i < 5; ++i) {
    counter.add(1);
    sampler.sample_now();
  }
  EXPECT_EQ(sampler.sample_count(), 5u);
  const auto window = sampler.window();
  EXPECT_EQ(window.samples, 3u);  // two oldest deltas fell off the ring
  EXPECT_EQ(window.delta.value_of("test.sampler_ring"), 3u);
}

TEST(Sampler, GaugesReportNewestSampledValue) {
  obs::reset();
  obs::Gauge gauge("test.sampler_gauge");
  obs::TimeSeriesSampler::Options options;
  options.interval_ms = 0;
  obs::TimeSeriesSampler sampler(options);
  gauge.set(5);
  sampler.sample_now();
  gauge.set(9);
  sampler.sample_now();
  EXPECT_EQ(sampler.window().delta.value_of("test.sampler_gauge"), 9u);
}

TEST(Sampler, HitRateAndHistogramDeltasFeedWindowedViews) {
  obs::reset();
  obs::Counter hits("test.sampler_hits");
  obs::Counter misses("test.sampler_misses");
  obs::Histogram latency("test.sampler_latency");
  latency.record(1000000);  // pre-baseline sample must not reach the window
  obs::TimeSeriesSampler::Options options;
  options.interval_ms = 0;
  obs::TimeSeriesSampler sampler(options);
  hits.add(3);
  misses.add(1);
  for (int i = 0; i < 100; ++i) latency.record(6);  // bucket 3: [4, 8)
  sampler.sample_now();
  const auto window = sampler.window();
  EXPECT_DOUBLE_EQ(window.hit_rate("test.sampler_hits", "test.sampler_misses"),
                   0.75);
  EXPECT_EQ(window.hit_rate("test.sampler_none_a", "test.sampler_none_b"),
            0.0);
  const double p50 = window.delta.quantile("test.sampler_latency", 0.5);
  EXPECT_GE(p50, 4.0);
  EXPECT_LE(p50, 8.0);
}

TEST(Sampler, BackgroundThreadSamplesAndJoinsCleanly) {
  obs::reset();
  std::atomic<std::uint64_t> callbacks{0};
  obs::TimeSeriesSampler::Options options;
  options.interval_ms = 2;
  options.on_sample = [&callbacks](const obs::MetricsSnapshot&) {
    callbacks.fetch_add(1, std::memory_order_relaxed);
  };
  obs::TimeSeriesSampler sampler(options);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sampler.sample_count() < 2 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(sampler.sample_count(), 2u);
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  const std::uint64_t settled = sampler.sample_count();
  EXPECT_EQ(callbacks.load(), settled);  // every sample ran the callback
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(sampler.sample_count(), settled);  // no samples after the join
  sampler.stop();  // idempotent
}

// ---------------------------------------------------------------------------
// Tracing.

/// Collects {ph, name, tid, ts} trace events from an exported document and
/// checks per-thread begin/end matching with a stack — exactly the property
/// chrome://tracing needs for duration events.
void check_trace(const std::string& text, std::size_t* spans_out = nullptr) {
  const JsonValue doc = JsonReader(text).parse();
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  std::map<double, std::vector<std::string>> stacks;  // tid -> open names
  std::map<double, double> last_ts;
  std::size_t spans = 0;
  for (const JsonValue& event : events.array) {
    const std::string& phase = event.at("ph").string;
    if (phase == "M") continue;  // thread_name metadata carries no ts
    const double tid = event.at("tid").number;
    const double ts = event.at("ts").number;
    ASSERT_TRUE(phase == "B" || phase == "E" || phase == "i")
        << "unexpected phase " << phase;
    if (last_ts.count(tid) != 0) {
      EXPECT_GE(ts, last_ts[tid]) << "per-thread timestamps must not go back";
    }
    last_ts[tid] = ts;
    if (phase == "i") {
      // Instant events annotate rather than bracket: no stack effect, but
      // they must carry the thread scope and an args.id payload.
      EXPECT_EQ(event.at("s").string, "t");
      ASSERT_EQ(event.at("args").kind, JsonValue::Kind::kObject);
      event.at("args").at("id");  // throws (fails the test) when absent
      continue;
    }
    if (phase == "B") {
      stacks[tid].push_back(event.at("name").string);
    } else {
      ASSERT_FALSE(stacks[tid].empty()) << "end without matching begin";
      EXPECT_EQ(stacks[tid].back(), event.at("name").string)
          << "ends must close the innermost open span";
      stacks[tid].pop_back();
      ++spans;
    }
  }
  for (const auto& [tid, stack] : stacks)
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  if (spans_out != nullptr) *spans_out = spans;
}

TEST(Tracing, DisabledSpansRecordNothing) {
  obs::disable_tracing();
  obs::clear_trace();
  { obs::Span span("test.ignored"); }
  std::ostringstream out;
  obs::write_chrome_trace(out);
  std::size_t spans = 999;
  check_trace(out.str(), &spans);
  EXPECT_EQ(spans, 0u);
}

TEST(Tracing, NestedSpansExportMatchedPairs) {
  obs::enable_tracing();
  obs::clear_trace();
  {
    obs::Span outer("test.outer");
    {
      obs::Span middle("test.middle");
      obs::Span inner("test.inner");
    }
  }
  obs::disable_tracing();
  std::ostringstream out;
  obs::write_chrome_trace(out);
  std::size_t spans = 0;
  check_trace(out.str(), &spans);
  EXPECT_EQ(spans, 3u);
}

TEST(Tracing, InstantEventsCarryTheirAnnotation) {
  obs::enable_tracing();
  obs::clear_trace();
  {
    obs::Span span("test.op");
    obs::trace_instant("serve.request_id", "r42");
  }
  obs::disable_tracing();
  std::ostringstream out;
  obs::write_chrome_trace(out);
  std::size_t spans = 0;
  check_trace(out.str(), &spans);  // validates ph/s/args shape
  EXPECT_EQ(spans, 1u);
  const JsonValue doc = JsonReader(out.str()).parse();
  bool found = false;
  for (const JsonValue& event : doc.at("traceEvents").array) {
    if (event.at("ph").string != "i") continue;
    EXPECT_EQ(event.at("name").string, "serve.request_id");
    EXPECT_EQ(event.at("args").at("id").string, "r42");
    found = true;
  }
  EXPECT_TRUE(found) << "instant event missing from the export";
}

TEST(Tracing, DisabledInstantEventsRecordNothing) {
  obs::disable_tracing();
  obs::clear_trace();
  obs::trace_instant("serve.request_id", "dropped");
  std::ostringstream out;
  obs::write_chrome_trace(out);
  const JsonValue doc = JsonReader(out.str()).parse();
  EXPECT_TRUE(doc.at("traceEvents").array.empty());
}

TEST(Tracing, RingWraparoundStillExportsBalancedPairs) {
  // 8-event ring, far more spans than fit: old events are overwritten and
  // the exporter must drop the resulting orphans instead of emitting
  // unbalanced B/E pairs.  Ring capacity binds at ring creation, so the
  // spans run on a fresh thread (whose ring is created under the new cap).
  obs::enable_tracing(8);
  obs::clear_trace();
  std::thread([] {
    obs::Span session("test.session");  // begin will be overwritten
    for (int i = 0; i < 100; ++i) obs::Span span("test.wrapped");
  }).join();
  obs::disable_tracing();
  std::ostringstream out;
  obs::write_chrome_trace(out);
  std::size_t spans = 0;
  check_trace(out.str(), &spans);
  EXPECT_GT(spans, 0u);
  EXPECT_LE(spans, 4u);  // at most ring_capacity / 2 complete spans
}

TEST(Tracing, WorkerThreadSpansCarryDistinctTids) {
  obs::enable_tracing();
  obs::clear_trace();
  {
    util::ThreadPool pool(2);
    pool.parallel_for(32, [](std::size_t) { obs::Span span("test.worker"); });
  }
  obs::disable_tracing();
  std::ostringstream out;
  obs::write_chrome_trace(out);
  check_trace(out.str());
}

#endif  // !FTMC_OBS_DISABLED

// ---------------------------------------------------------------------------
// Differential: telemetry must never change results.  Runs each flow once
// with tracing off and once with tracing on (metrics always accumulate) and
// pins the outputs bitwise-identical.

std::uint64_t bits(double value) { return std::bit_cast<std::uint64_t>(value); }

struct TraceSession {
  TraceSession() { obs::enable_tracing(); }
  ~TraceSession() {
    obs::disable_tracing();
    obs::clear_trace();
  }
};

TEST(TelemetryDifferential, AnalyzeBitwiseIdentical) {
  const auto apps = fixtures::small_mixed_apps();
  hardening::HardeningPlan plan(apps.task_count());
  plan[0].technique = hardening::Technique::kReexecution;
  plan[0].reexecutions = 1;
  std::vector<model::ProcessorId> mapping(apps.task_count());
  for (std::size_t i = 0; i < mapping.size(); ++i)
    mapping[i] = model::ProcessorId{static_cast<std::uint32_t>(i % 2)};
  const auto arch = fixtures::test_arch(2);
  const auto system = hardening::apply_hardening(apps, plan, mapping, 2);
  const sched::HolisticAnalysis backend;
  const core::McAnalysis analysis(backend);

  obs::disable_tracing();
  const auto baseline = analysis.analyze(arch, system, {false, true});
  TraceSession session;
  const auto traced = analysis.analyze(arch, system, {false, true});

  ASSERT_EQ(baseline.wcrt.size(), traced.wcrt.size());
  for (std::size_t i = 0; i < baseline.wcrt.size(); ++i)
    EXPECT_EQ(baseline.wcrt[i], traced.wcrt[i]);
  EXPECT_EQ(baseline.scenario_count, traced.scenario_count);
  EXPECT_EQ(baseline.schedulable(), traced.schedulable());
}

TEST(TelemetryDifferential, SimulateBitwiseIdentical) {
  const auto apps = fixtures::small_mixed_apps();
  hardening::HardeningPlan plan(apps.task_count());
  plan[1].technique = hardening::Technique::kReexecution;
  plan[1].reexecutions = 1;
  std::vector<model::ProcessorId> mapping(apps.task_count());
  for (std::size_t i = 0; i < mapping.size(); ++i)
    mapping[i] = model::ProcessorId{static_cast<std::uint32_t>(i % 2)};
  const auto arch = fixtures::test_arch(2);
  const auto system = hardening::apply_hardening(apps, plan, mapping, 2);
  const auto priorities = sched::assign_priorities(system.apps);

  sim::MonteCarloOptions options;
  options.profiles = 200;
  options.seed = 7;
  options.threads = 2;

  const core::DropSet drop{false, false};
  obs::disable_tracing();
  const auto baseline =
      sim::monte_carlo_wcrt(arch, system, drop, priorities, options);
  TraceSession session;
  const auto traced =
      sim::monte_carlo_wcrt(arch, system, drop, priorities, options);

  EXPECT_EQ(baseline.worst_response, traced.worst_response);
  EXPECT_EQ(baseline.deadline_miss_profiles, traced.deadline_miss_profiles);
  EXPECT_EQ(baseline.events_processed, traced.events_processed);
  ASSERT_EQ(baseline.distribution.size(), traced.distribution.size());
  for (std::size_t g = 0; g < baseline.distribution.size(); ++g) {
    EXPECT_EQ(bits(baseline.distribution[g].mean),
              bits(traced.distribution[g].mean));
    EXPECT_EQ(baseline.distribution[g].max, traced.distribution[g].max);
    EXPECT_EQ(baseline.distribution[g].p99, traced.distribution[g].p99);
  }
}

TEST(TelemetryDifferential, OptimizeBitwiseIdentical) {
  const auto apps = fixtures::small_mixed_apps();
  const auto arch = fixtures::test_arch(2);
  const sched::HolisticAnalysis backend;
  dse::GeneticOptimizer optimizer(arch, apps, backend);
  dse::GaOptions options;
  options.population = 12;
  options.offspring = 12;
  options.generations = 4;
  options.seed = 17;
  options.threads = 2;

  obs::disable_tracing();
  const auto baseline = optimizer.run(options);
  TraceSession session;
  const auto traced = optimizer.run(options);

  EXPECT_EQ(baseline.evaluations, traced.evaluations);
  EXPECT_EQ(bits(baseline.best_feasible_power),
            bits(traced.best_feasible_power));
  ASSERT_EQ(baseline.pareto.size(), traced.pareto.size());
  for (std::size_t i = 0; i < baseline.pareto.size(); ++i) {
    EXPECT_EQ(bits(baseline.pareto[i].evaluation.power),
              bits(traced.pareto[i].evaluation.power));
    EXPECT_EQ(bits(baseline.pareto[i].evaluation.service),
              bits(traced.pareto[i].evaluation.service));
    EXPECT_EQ(baseline.pareto[i].candidate.base_mapping,
              traced.pareto[i].candidate.base_mapping);
  }
}

}  // namespace
