// Observability layer: metrics registry semantics under concurrency, span
// tracing + Chrome-trace export shape, and the differential guarantee that
// telemetry never changes results.
#include "ftmc/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/dse/ga.hpp"
#include "ftmc/obs/export.hpp"
#include "ftmc/obs/json.hpp"
#include "ftmc/obs/trace.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "ftmc/util/thread_pool.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to validate exporter output and walk the
// trace-event array.  Throws std::runtime_error on malformed input, so a
// test failure pinpoints the first bad byte.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json error at byte " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue value;
      value.kind = JsonValue::Kind::kString;
      value.string = parse_string();
      return value;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out += "\\u";  // keep raw; tests never compare escaped content
            out.append(text_, pos_, 4);
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected value");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::stod(text_.substr(start, pos_ - start));
    return value;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return value;
    while (true) {
      value.array.push_back(parse_value());
      skip_ws();
      if (consume(']')) return value;
      expect(',');
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return value;
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.object[std::move(key)] = parse_value();
      skip_ws();
      if (consume('}')) return value;
      expect(',');
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

#if !defined(FTMC_OBS_DISABLED)

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsRegistry, CounterMergesThreadPoolIncrements) {
  obs::reset();
  constexpr std::size_t kTasks = 512;
  constexpr std::uint64_t kDelta = 3;
  util::ThreadPool pool(4);
  pool.parallel_for(kTasks, [](std::size_t) {
    // Per-call handle construction exercises idempotent registration; real
    // hot paths hoist the handle into a function-local static.
    obs::Counter counter("test.pool_counter");
    counter.add(kDelta);
  });
  const auto snap = obs::snapshot();
  EXPECT_EQ(snap.value_of("test.pool_counter"), kTasks * kDelta);
}

TEST(MetricsRegistry, CountsSurviveThreadExit) {
  obs::reset();
  {
    // Shards of exited workers must drain into the retired accumulator.
    util::ThreadPool pool(3);
    pool.parallel_for(64, [](std::size_t) {
      obs::Counter counter("test.retired_counter");
      counter.add(1);
    });
  }  // pool joins here
  EXPECT_EQ(obs::snapshot().value_of("test.retired_counter"), 64u);
}

TEST(MetricsRegistry, GaugeLastWriterWins) {
  obs::reset();
  obs::Gauge gauge("test.gauge");
  gauge.set(41);
  gauge.add(1);
  EXPECT_EQ(obs::snapshot().value_of("test.gauge"), 42u);
  gauge.set(7);
  EXPECT_EQ(obs::snapshot().value_of("test.gauge"), 7u);
}

TEST(MetricsRegistry, HistogramBucketsCountAndSum) {
  obs::reset();
  obs::Histogram histogram("test.hist");
  histogram.record(0);    // bucket 0
  histogram.record(1);    // bucket 1
  histogram.record(5);    // bucket 3: [4, 8)
  histogram.record(7);    // bucket 3
  histogram.record(800);  // bucket 10: [512, 1024)
  const auto snap = obs::snapshot();
  const auto* metric = snap.find("test.hist");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(metric->value, 5u);
  EXPECT_EQ(metric->sum, 813u);
  ASSERT_GE(metric->buckets.size(), 11u);
  EXPECT_EQ(metric->buckets[0], 1u);
  EXPECT_EQ(metric->buckets[1], 1u);
  EXPECT_EQ(metric->buckets[3], 2u);
  EXPECT_EQ(metric->buckets[10], 1u);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistration) {
  obs::reset();
  obs::Counter counter("test.reset_counter");
  counter.add(9);
  obs::reset();
  const auto snap = obs::snapshot();
  const auto* metric = snap.find("test.reset_counter");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->value, 0u);
  counter.add(2);
  EXPECT_EQ(obs::snapshot().value_of("test.reset_counter"), 2u);
}

TEST(MetricsExport, SchemaRoundTripsThroughJson) {
  obs::reset();
  obs::Counter counter("test.export_counter");
  counter.add(5);
  obs::Gauge gauge("test.export_gauge");
  gauge.set(11);
  obs::Histogram histogram("test.export_hist");
  histogram.record(6);
  std::ostringstream out;
  obs::write_metrics_json(out);
  const JsonValue doc = JsonReader(out.str()).parse();
  EXPECT_EQ(doc.at("schema").string, "ftmc.metrics.v1");
  EXPECT_EQ(doc.at("counters").at("test.export_counter").number, 5.0);
  EXPECT_EQ(doc.at("gauges").at("test.export_gauge").number, 11.0);
  const JsonValue& hist = doc.at("histograms").at("test.export_hist");
  EXPECT_EQ(hist.at("count").number, 1.0);
  EXPECT_EQ(hist.at("sum").number, 6.0);
  ASSERT_EQ(hist.at("buckets").array.size(), 4u);  // trailing zeros trimmed
  EXPECT_EQ(hist.at("buckets").array[3].number, 1.0);
}

// ---------------------------------------------------------------------------
// Tracing.

/// Collects {ph, name, tid, ts} trace events from an exported document and
/// checks per-thread begin/end matching with a stack — exactly the property
/// chrome://tracing needs for duration events.
void check_trace(const std::string& text, std::size_t* spans_out = nullptr) {
  const JsonValue doc = JsonReader(text).parse();
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  std::map<double, std::vector<std::string>> stacks;  // tid -> open names
  std::map<double, double> last_ts;
  std::size_t spans = 0;
  for (const JsonValue& event : events.array) {
    const std::string& phase = event.at("ph").string;
    if (phase == "M") continue;  // thread_name metadata carries no ts
    const double tid = event.at("tid").number;
    const double ts = event.at("ts").number;
    ASSERT_TRUE(phase == "B" || phase == "E") << "unexpected phase " << phase;
    if (last_ts.count(tid) != 0) {
      EXPECT_GE(ts, last_ts[tid]) << "per-thread timestamps must not go back";
    }
    last_ts[tid] = ts;
    if (phase == "B") {
      stacks[tid].push_back(event.at("name").string);
    } else {
      ASSERT_FALSE(stacks[tid].empty()) << "end without matching begin";
      EXPECT_EQ(stacks[tid].back(), event.at("name").string)
          << "ends must close the innermost open span";
      stacks[tid].pop_back();
      ++spans;
    }
  }
  for (const auto& [tid, stack] : stacks)
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  if (spans_out != nullptr) *spans_out = spans;
}

TEST(Tracing, DisabledSpansRecordNothing) {
  obs::disable_tracing();
  obs::clear_trace();
  { obs::Span span("test.ignored"); }
  std::ostringstream out;
  obs::write_chrome_trace(out);
  std::size_t spans = 999;
  check_trace(out.str(), &spans);
  EXPECT_EQ(spans, 0u);
}

TEST(Tracing, NestedSpansExportMatchedPairs) {
  obs::enable_tracing();
  obs::clear_trace();
  {
    obs::Span outer("test.outer");
    {
      obs::Span middle("test.middle");
      obs::Span inner("test.inner");
    }
  }
  obs::disable_tracing();
  std::ostringstream out;
  obs::write_chrome_trace(out);
  std::size_t spans = 0;
  check_trace(out.str(), &spans);
  EXPECT_EQ(spans, 3u);
}

TEST(Tracing, RingWraparoundStillExportsBalancedPairs) {
  // 8-event ring, far more spans than fit: old events are overwritten and
  // the exporter must drop the resulting orphans instead of emitting
  // unbalanced B/E pairs.  Ring capacity binds at ring creation, so the
  // spans run on a fresh thread (whose ring is created under the new cap).
  obs::enable_tracing(8);
  obs::clear_trace();
  std::thread([] {
    obs::Span session("test.session");  // begin will be overwritten
    for (int i = 0; i < 100; ++i) obs::Span span("test.wrapped");
  }).join();
  obs::disable_tracing();
  std::ostringstream out;
  obs::write_chrome_trace(out);
  std::size_t spans = 0;
  check_trace(out.str(), &spans);
  EXPECT_GT(spans, 0u);
  EXPECT_LE(spans, 4u);  // at most ring_capacity / 2 complete spans
}

TEST(Tracing, WorkerThreadSpansCarryDistinctTids) {
  obs::enable_tracing();
  obs::clear_trace();
  {
    util::ThreadPool pool(2);
    pool.parallel_for(32, [](std::size_t) { obs::Span span("test.worker"); });
  }
  obs::disable_tracing();
  std::ostringstream out;
  obs::write_chrome_trace(out);
  check_trace(out.str());
}

#endif  // !FTMC_OBS_DISABLED

// ---------------------------------------------------------------------------
// Differential: telemetry must never change results.  Runs each flow once
// with tracing off and once with tracing on (metrics always accumulate) and
// pins the outputs bitwise-identical.

std::uint64_t bits(double value) { return std::bit_cast<std::uint64_t>(value); }

struct TraceSession {
  TraceSession() { obs::enable_tracing(); }
  ~TraceSession() {
    obs::disable_tracing();
    obs::clear_trace();
  }
};

TEST(TelemetryDifferential, AnalyzeBitwiseIdentical) {
  const auto apps = fixtures::small_mixed_apps();
  hardening::HardeningPlan plan(apps.task_count());
  plan[0].technique = hardening::Technique::kReexecution;
  plan[0].reexecutions = 1;
  std::vector<model::ProcessorId> mapping(apps.task_count());
  for (std::size_t i = 0; i < mapping.size(); ++i)
    mapping[i] = model::ProcessorId{static_cast<std::uint32_t>(i % 2)};
  const auto arch = fixtures::test_arch(2);
  const auto system = hardening::apply_hardening(apps, plan, mapping, 2);
  const sched::HolisticAnalysis backend;
  const core::McAnalysis analysis(backend);

  obs::disable_tracing();
  const auto baseline = analysis.analyze(arch, system, {false, true});
  TraceSession session;
  const auto traced = analysis.analyze(arch, system, {false, true});

  ASSERT_EQ(baseline.wcrt.size(), traced.wcrt.size());
  for (std::size_t i = 0; i < baseline.wcrt.size(); ++i)
    EXPECT_EQ(baseline.wcrt[i], traced.wcrt[i]);
  EXPECT_EQ(baseline.scenario_count, traced.scenario_count);
  EXPECT_EQ(baseline.schedulable(), traced.schedulable());
}

TEST(TelemetryDifferential, SimulateBitwiseIdentical) {
  const auto apps = fixtures::small_mixed_apps();
  hardening::HardeningPlan plan(apps.task_count());
  plan[1].technique = hardening::Technique::kReexecution;
  plan[1].reexecutions = 1;
  std::vector<model::ProcessorId> mapping(apps.task_count());
  for (std::size_t i = 0; i < mapping.size(); ++i)
    mapping[i] = model::ProcessorId{static_cast<std::uint32_t>(i % 2)};
  const auto arch = fixtures::test_arch(2);
  const auto system = hardening::apply_hardening(apps, plan, mapping, 2);
  const auto priorities = sched::assign_priorities(system.apps);

  sim::MonteCarloOptions options;
  options.profiles = 200;
  options.seed = 7;
  options.threads = 2;

  const core::DropSet drop{false, false};
  obs::disable_tracing();
  const auto baseline =
      sim::monte_carlo_wcrt(arch, system, drop, priorities, options);
  TraceSession session;
  const auto traced =
      sim::monte_carlo_wcrt(arch, system, drop, priorities, options);

  EXPECT_EQ(baseline.worst_response, traced.worst_response);
  EXPECT_EQ(baseline.deadline_miss_profiles, traced.deadline_miss_profiles);
  EXPECT_EQ(baseline.events_processed, traced.events_processed);
  ASSERT_EQ(baseline.distribution.size(), traced.distribution.size());
  for (std::size_t g = 0; g < baseline.distribution.size(); ++g) {
    EXPECT_EQ(bits(baseline.distribution[g].mean),
              bits(traced.distribution[g].mean));
    EXPECT_EQ(baseline.distribution[g].max, traced.distribution[g].max);
    EXPECT_EQ(baseline.distribution[g].p99, traced.distribution[g].p99);
  }
}

TEST(TelemetryDifferential, OptimizeBitwiseIdentical) {
  const auto apps = fixtures::small_mixed_apps();
  const auto arch = fixtures::test_arch(2);
  const sched::HolisticAnalysis backend;
  dse::GeneticOptimizer optimizer(arch, apps, backend);
  dse::GaOptions options;
  options.population = 12;
  options.offspring = 12;
  options.generations = 4;
  options.seed = 17;
  options.threads = 2;

  obs::disable_tracing();
  const auto baseline = optimizer.run(options);
  TraceSession session;
  const auto traced = optimizer.run(options);

  EXPECT_EQ(baseline.evaluations, traced.evaluations);
  EXPECT_EQ(bits(baseline.best_feasible_power),
            bits(traced.best_feasible_power));
  ASSERT_EQ(baseline.pareto.size(), traced.pareto.size());
  for (std::size_t i = 0; i < baseline.pareto.size(); ++i) {
    EXPECT_EQ(bits(baseline.pareto[i].evaluation.power),
              bits(traced.pareto[i].evaluation.power));
    EXPECT_EQ(bits(baseline.pareto[i].evaluation.service),
              bits(traced.pareto[i].evaluation.service));
    EXPECT_EQ(baseline.pareto[i].candidate.base_mapping,
              traced.pareto[i].candidate.base_mapping);
  }
}

}  // namespace
