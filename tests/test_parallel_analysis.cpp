// Bitwise-equality lockdown of the scenario-parallel Algorithm 1 path
// (ISSUE 1): analyze() with a thread pool must return results identical to
// the sequential path in every field — WCRT vector, normal-state windows,
// schedulability flags, scenario count — across thread counts, modes, and
// the release-cutoff edge case (droppable applications whose later
// instances never release).
#include <gtest/gtest.h>

#include <vector>

#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/util/thread_pool.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using core::McAnalysis;

void expect_identical(const core::McAnalysisResult& sequential,
                      const core::McAnalysisResult& parallel) {
  EXPECT_EQ(sequential.wcrt, parallel.wcrt);
  EXPECT_EQ(sequential.normal_schedulable, parallel.normal_schedulable);
  EXPECT_EQ(sequential.critical_schedulable, parallel.critical_schedulable);
  EXPECT_EQ(sequential.scenario_count, parallel.scenario_count);
  EXPECT_EQ(sequential.normal.schedulable, parallel.normal.schedulable);
  ASSERT_EQ(sequential.normal.windows.size(), parallel.normal.windows.size());
  for (std::size_t i = 0; i < sequential.normal.windows.size(); ++i) {
    const sched::TaskWindow& a = sequential.normal.windows[i];
    const sched::TaskWindow& b = parallel.normal.windows[i];
    EXPECT_EQ(a.min_start, b.min_start);
    EXPECT_EQ(a.min_finish, b.min_finish);
    EXPECT_EQ(a.max_start, b.max_start);
    EXPECT_EQ(a.max_finish, b.max_finish);
    EXPECT_EQ(a.schedulable, b.schedulable);
  }
}

/// Repaired random candidates over a synth benchmark, analyzed with and
/// without a pool of every requested size, in both analysis modes.
void run_differential(const benchmarks::Benchmark& benchmark,
                      std::size_t candidate_count, std::uint64_t seed) {
  const dse::Decoder decoder(benchmark.arch, benchmark.apps);
  util::Rng rng(seed);
  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);

  for (std::size_t c = 0; c < candidate_count; ++c) {
    dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
    const core::Candidate candidate = decoder.decode(chromosome, rng);
    const auto system = hardening::apply_hardening(
        benchmark.apps, candidate.plan, candidate.base_mapping,
        benchmark.arch.processor_count());

    for (const McAnalysis::Mode mode :
         {McAnalysis::Mode::kProposed, McAnalysis::Mode::kNaive}) {
      const auto sequential =
          analysis.analyze(benchmark.arch, system, candidate.drop, mode);
      for (const std::size_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(benchmark.name + " candidate " + std::to_string(c) +
                     ", " + std::to_string(threads) + " threads");
        util::ThreadPool pool(threads);
        const auto parallel = analysis.analyze(
            benchmark.arch, system, candidate.drop, mode, &pool);
        expect_identical(sequential, parallel);
      }
    }
  }
}

TEST(ParallelAnalysisDifferential, Synth1BitwiseEqualAcrossThreadCounts) {
  run_differential(benchmarks::synth_benchmark(1), 12, 101);
}

TEST(ParallelAnalysisDifferential, Synth2BitwiseEqualAcrossThreadCounts) {
  run_differential(benchmarks::synth_benchmark(2), 8, 202);
}

// The release-cutoff edge case: a dropped application inside the transition
// window gets bounds [0, wcet] with a cutoff at the trigger's max finish;
// the parallel path must reproduce that scenario exactly.
TEST(ParallelAnalysisDifferential, ReleaseCutoffScenarioMatches) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("fast", 2, 40, 50, 250, true, 1.0));
  graphs.push_back(
      fixtures::chain_graph("slow", 3, 80, 100, 1000, false, 1e-6));
  const model::ApplicationSet apps{std::move(graphs)};
  const auto arch = fixtures::test_arch(2);

  hardening::HardeningPlan plan(apps.task_count());
  // Harden the critical chain so triggers (and thus scenarios) exist.
  for (std::size_t i = 2; i < apps.task_count(); ++i) {
    plan[i].technique = hardening::Technique::kReexecution;
    plan[i].reexecutions = 1;
  }
  std::vector<model::ProcessorId> mapping(apps.task_count());
  for (std::size_t i = 0; i < mapping.size(); ++i)
    mapping[i] = model::ProcessorId{static_cast<std::uint32_t>(i % 2)};
  const auto system = hardening::apply_hardening(apps, plan, mapping, 2);

  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);
  const core::DropSet drop{true, false};  // droppable graph is dropped

  for (const McAnalysis::Mode mode :
       {McAnalysis::Mode::kProposed, McAnalysis::Mode::kNaive}) {
    const auto sequential = analysis.analyze(arch, system, drop, mode);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(std::to_string(threads) + " threads");
      util::ThreadPool pool(threads);
      expect_identical(sequential,
                       analysis.analyze(arch, system, drop, mode, &pool));
    }
  }
}

// A nested use mirroring the GA: candidate-level parallel_for whose workers
// fan scenarios out on the same pool.  This must neither deadlock (the pool
// is nesting-safe: waiting callers help drain the queue) nor change any
// result.
TEST(ParallelAnalysis, NestedPoolUseIsDeadlockFreeAndIdentical) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  const dse::Decoder decoder(benchmark.arch, benchmark.apps);
  util::Rng rng(303);
  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);

  std::vector<core::Candidate> candidates;
  std::vector<hardening::HardenedSystem> systems;
  for (int i = 0; i < 6; ++i) {
    dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
    candidates.push_back(decoder.decode(chromosome, rng));
    systems.push_back(hardening::apply_hardening(
        benchmark.apps, candidates.back().plan,
        candidates.back().base_mapping, benchmark.arch.processor_count()));
  }

  std::vector<core::McAnalysisResult> sequential(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i)
    sequential[i] =
        analysis.analyze(benchmark.arch, systems[i], candidates[i].drop);

  util::ThreadPool pool(2);
  std::vector<core::McAnalysisResult> nested(candidates.size());
  pool.parallel_for(candidates.size(), [&](std::size_t i) {
    nested[i] = analysis.analyze(benchmark.arch, systems[i],
                                 candidates[i].drop,
                                 McAnalysis::Mode::kProposed, &pool);
  });
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    SCOPED_TRACE("candidate " + std::to_string(i));
    expect_identical(sequential[i], nested[i]);
  }
}

}  // namespace
