// Documents the priority-policy interaction with task dropping: under the
// criticality-first policy droppable tasks can never interfere with
// critical ones, so Algorithm 1 degenerates to Naive for critical
// applications — which is why the library defaults to rate-monotonic
// priorities (DESIGN.md, "Local scheduling policy").
#include <gtest/gtest.h>

#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/sched/holistic.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;

struct PolicyRig {
  model::Architecture arch = fixtures::test_arch(1);
  model::ApplicationSet apps = make_apps();
  hardening::HardenedSystem system = make_system(apps);
  core::DropSet drop{false, true};

  static model::ApplicationSet make_apps() {
    std::vector<model::TaskGraph> graphs;
    graphs.push_back(
        fixtures::chain_graph("crit", 2, 100, 150, 1000, false, 1e-6));
    graphs.push_back(
        fixtures::chain_graph("noise", 1, 60, 60, 250, true, 1.0));
    return model::ApplicationSet{std::move(graphs)};
  }

  static hardening::HardenedSystem make_system(
      const model::ApplicationSet& apps) {
    hardening::HardeningPlan plan(apps.task_count());
    plan[0].technique = hardening::Technique::kReexecution;
    plan[0].reexecutions = 1;
    return hardening::apply_hardening(
        apps, plan,
        std::vector<model::ProcessorId>(apps.task_count(),
                                        model::ProcessorId{0}),
        1);
  }
};

TEST(PolicyAblation, RateMonotonicLetsDroppingHelpCriticalTasks) {
  PolicyRig rig;
  const sched::HolisticAnalysis backend;
  const core::McAnalysis analysis(backend,
                                  sched::PriorityPolicy::kRateMonotonic);
  const auto proposed =
      analysis.analyze(rig.arch, rig.system, rig.drop,
                       core::McAnalysis::Mode::kProposed);
  const auto naive = analysis.analyze(rig.arch, rig.system, rig.drop,
                                      core::McAnalysis::Mode::kNaive);
  const auto id = rig.system.apps.find_graph("crit");
  // The short-period droppable outranks crit under RM, so dropping its
  // later instances strictly tightens the critical graph's bound.
  EXPECT_LT(proposed.graph_wcrt(rig.system.apps, id),
            naive.graph_wcrt(rig.system.apps, id));
}

TEST(PolicyAblation, CriticalityFirstMakesDroppingIrrelevantForCritical) {
  PolicyRig rig;
  const sched::HolisticAnalysis backend;
  const core::McAnalysis analysis(
      backend, sched::PriorityPolicy::kCriticalityRateMonotonic);
  const auto proposed =
      analysis.analyze(rig.arch, rig.system, rig.drop,
                       core::McAnalysis::Mode::kProposed);
  const auto naive = analysis.analyze(rig.arch, rig.system, rig.drop,
                                      core::McAnalysis::Mode::kNaive);
  const auto id = rig.system.apps.find_graph("crit");
  // Droppables sit below every critical task, so their treatment cannot
  // move the critical bound: Proposed == Naive.
  EXPECT_EQ(proposed.graph_wcrt(rig.system.apps, id),
            naive.graph_wcrt(rig.system.apps, id));
}

}  // namespace
