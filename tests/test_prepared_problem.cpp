// Differential lockdown of the prepared-problem analysis kernel (ISSUE 2).
//
// The kernel restructures the holistic backend three ways — build the
// problem once per candidate and solve N bounds vectors against it, pack the
// relation matrix as bitset rows, and run the worst-case fixed point as a
// change-driven worklist in topological order.  Every restructuring must be
// observationally invisible: these tests pin
//
//   - prepare-once/solve-N against N independent monolithic analyze() calls,
//   - the worklist fixed point against the reference full-sweep mode,
//   - prepared-kernel McAnalysis against the rebuild-per-solve adapter,
//   - GA search trajectories with the kernel on vs. off,
//
// bitwise, across >= 100 seeded candidates, in both the offset-aware and
// the classical jitter-fallback regimes, sequentially and on a thread pool,
// including diverged (unschedulable) problems and scratch reuse across
// different problems.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/core/exec_model.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/dse/ga.hpp"
#include "ftmc/sched/prepared_problem.hpp"
#include "ftmc/util/thread_pool.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using fixtures::CandidateFixture;
using fixtures::expect_same_mc_result;
using fixtures::expect_same_result;
using fixtures::make_candidate;
using fixtures::scenario_like_bounds;
using sched::PreparedProblem;

/// Core differential: one PreparedProblem, N solves on one reused scratch,
/// against N monolithic analyze() calls and against the reference sweep
/// mode — in both interference regimes.
void run_backend_differential(const benchmarks::Benchmark& benchmark,
                              std::size_t candidate_count,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  PreparedProblem::Scratch scratch;  // shared across candidates on purpose
  for (std::size_t c = 0; c < candidate_count; ++c) {
    const CandidateFixture fx = make_candidate(benchmark, rng);
    const auto bounds_sets = scenario_like_bounds(fx.system, 6, rng);
    for (const bool offset_aware : {true, false}) {
      SCOPED_TRACE(benchmark.name + " candidate " + std::to_string(c) +
                   (offset_aware ? ", offset-aware" : ", jitter-fallback"));
      sched::HolisticAnalysis::Options options;
      options.precedence_aware = offset_aware;
      const sched::HolisticAnalysis monolithic(options);

      sched::HolisticAnalysis::Options sweep_options = options;
      sweep_options.worklist_fixed_point = false;
      const PreparedProblem prepared(benchmark.arch, fx.system.apps,
                                     fx.system.mapping, fx.priorities,
                                     options);
      const PreparedProblem prepared_sweep(benchmark.arch, fx.system.apps,
                                           fx.system.mapping, fx.priorities,
                                           sweep_options);

      for (const auto& bounds : bounds_sets) {
        const sched::AnalysisResult reference = monolithic.analyze(
            benchmark.arch, fx.system.apps, fx.system.mapping, bounds,
            fx.priorities);
        {
          SCOPED_TRACE("worklist arm");
          prepared.solve(bounds, scratch);
          expect_same_result(reference, prepared.materialize(scratch));
        }
        {
          SCOPED_TRACE("sweep arm");
          prepared_sweep.solve(bounds, scratch);
          expect_same_result(reference, prepared_sweep.materialize(scratch));
        }
      }
    }
  }
}

TEST(PreparedProblemDifferential, Synth1SolveNEqualsNAnalyzeCalls) {
  run_backend_differential(benchmarks::synth_benchmark(1), 60, 11);
}

TEST(PreparedProblemDifferential, Synth2SolveNEqualsNAnalyzeCalls) {
  run_backend_differential(benchmarks::synth_benchmark(2), 40, 22);
}

// Bus contention adds message nodes on the shared-bus pseudo-PE — the
// prepared structure must carry them (and their bounds-dependent silencing)
// identically.
TEST(PreparedProblemDifferential, BusContentionMessageNodesMatch) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  util::Rng rng(33);
  PreparedProblem::Scratch scratch;
  for (std::size_t c = 0; c < 10; ++c) {
    SCOPED_TRACE("candidate " + std::to_string(c));
    const CandidateFixture fx = make_candidate(benchmark, rng);
    sched::HolisticAnalysis::Options options;
    options.bus_contention = true;
    const sched::HolisticAnalysis monolithic(options);
    const PreparedProblem prepared(benchmark.arch, fx.system.apps,
                                   fx.system.mapping, fx.priorities, options);
    for (const auto& bounds : scenario_like_bounds(fx.system, 4, rng)) {
      prepared.solve(bounds, scratch);
      expect_same_result(
          monolithic.analyze(benchmark.arch, fx.system.apps,
                             fx.system.mapping, bounds, fx.priorities),
          prepared.materialize(scratch));
    }
  }
}

// Parallel solvers sharing one immutable PreparedProblem (per-worker
// thread-local scratch) must reproduce the sequential results exactly.
TEST(PreparedProblemDifferential, ParallelSolversShareOnePreparedProblem) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  util::Rng rng(44);
  for (std::size_t c = 0; c < 8; ++c) {
    SCOPED_TRACE("candidate " + std::to_string(c));
    const CandidateFixture fx = make_candidate(benchmark, rng);
    const PreparedProblem prepared(benchmark.arch, fx.system.apps,
                                   fx.system.mapping, fx.priorities, {});
    const auto bounds_sets = scenario_like_bounds(fx.system, 16, rng);

    std::vector<sched::AnalysisResult> sequential(bounds_sets.size());
    for (std::size_t i = 0; i < bounds_sets.size(); ++i)
      sequential[i] = prepared.solve(bounds_sets[i]);

    for (const std::size_t threads : {2u, 8u}) {
      SCOPED_TRACE(std::to_string(threads) + " threads");
      util::ThreadPool pool(threads);
      std::vector<sched::AnalysisResult> parallel(bounds_sets.size());
      pool.parallel_for(bounds_sets.size(), [&](std::size_t i) {
        parallel[i] = prepared.solve(bounds_sets[i]);
      });
      for (std::size_t i = 0; i < bounds_sets.size(); ++i)
        expect_same_result(sequential[i], parallel[i]);
    }
  }
}

// Overloaded problem: utilization far beyond capacity, so the fixed point
// diverges past the horizon.  Divergence verdicts, kUnschedulable windows,
// and the best-case (still finite) bounds must agree in every mode.
TEST(PreparedProblemDifferential, DivergedProblemMatchesInEveryMode) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("over1", 3, 300, 600, 1000, false,
                                         1e-6));
  graphs.push_back(fixtures::chain_graph("over2", 3, 300, 600, 1000, false,
                                         1e-6));
  graphs.push_back(fixtures::chain_graph("over3", 2, 200, 500, 1000, true,
                                         1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  const auto arch = fixtures::test_arch(1);
  const model::Mapping mapping(apps);  // everything on the single PE
  const auto priorities = sched::assign_priorities(apps);
  std::vector<sched::ExecBounds> bounds(apps.task_count());
  for (std::size_t i = 0; i < bounds.size(); ++i)
    bounds[i] = {apps.task(apps.task_ref(i)).bcet,
                 apps.task(apps.task_ref(i)).wcet};

  for (const bool offset_aware : {true, false}) {
    for (const bool worklist : {true, false}) {
      SCOPED_TRACE((offset_aware ? "offset-aware" : "jitter-fallback") +
                   std::string(worklist ? ", worklist" : ", sweep"));
      sched::HolisticAnalysis::Options options;
      options.precedence_aware = offset_aware;
      options.worklist_fixed_point = worklist;
      const sched::HolisticAnalysis backend(options);
      const auto result =
          backend.analyze(arch, apps, mapping, bounds, priorities);
      EXPECT_FALSE(result.schedulable);

      const PreparedProblem prepared(arch, apps, mapping, priorities,
                                     options);
      expect_same_result(result, prepared.solve(bounds));
    }
  }
}

// Scratch is problem-agnostic: reusing one scratch across problems of
// different sizes must not leak state between them.
TEST(PreparedProblem, ScratchReuseAcrossProblemsIsClean) {
  const benchmarks::Benchmark big = benchmarks::synth_benchmark(2);
  const benchmarks::Benchmark small = benchmarks::synth_benchmark(1);
  util::Rng rng(55);
  const CandidateFixture fx_big = make_candidate(big, rng);
  const CandidateFixture fx_small = make_candidate(small, rng);
  const PreparedProblem prepared_big(big.arch, fx_big.system.apps,
                                     fx_big.system.mapping,
                                     fx_big.priorities, {});
  const PreparedProblem prepared_small(small.arch, fx_small.system.apps,
                                       fx_small.system.mapping,
                                       fx_small.priorities, {});
  const auto bounds_big = core::nominal_bounds_of(fx_big.system);
  const auto bounds_small = core::nominal_bounds_of(fx_small.system);

  PreparedProblem::Scratch fresh_a, fresh_b, reused;
  prepared_big.solve(bounds_big, fresh_a);
  prepared_small.solve(bounds_small, fresh_b);
  // Large problem first, then the smaller one on the same scratch.
  prepared_big.solve(bounds_big, reused);
  expect_same_result(prepared_big.materialize(fresh_a),
                     prepared_big.materialize(reused));
  prepared_small.solve(bounds_small, reused);
  expect_same_result(prepared_small.materialize(fresh_b),
                     prepared_small.materialize(reused));
}

TEST(PreparedProblem, RejectsMalformedInputs) {
  const benchmarks::Benchmark benchmark = benchmarks::synth_benchmark(1);
  util::Rng rng(66);
  const CandidateFixture fx = make_candidate(benchmark, rng);
  std::vector<std::uint32_t> short_priorities(fx.priorities.begin(),
                                              fx.priorities.end() - 1);
  EXPECT_THROW(PreparedProblem(benchmark.arch, fx.system.apps,
                               fx.system.mapping, short_priorities, {}),
               std::invalid_argument);

  const PreparedProblem prepared(benchmark.arch, fx.system.apps,
                                 fx.system.mapping, fx.priorities, {});
  std::vector<sched::ExecBounds> short_bounds(fx.system.apps.task_count() -
                                              1);
  EXPECT_THROW(prepared.solve(short_bounds), std::invalid_argument);
  std::vector<sched::ExecBounds> invalid(fx.system.apps.task_count());
  invalid[0] = {10, 5};  // wcet < bcet
  EXPECT_THROW(prepared.solve(invalid), std::invalid_argument);
}

// McAnalysis end-to-end: the prepared kernel against the rebuild-per-solve
// adapter (Options::prepared_kernel = false), both Algorithm-1 modes,
// sequential and on a pool — real transition scenarios, real dedup, real
// release cutoffs.
void run_mc_differential(const benchmarks::Benchmark& benchmark,
                         std::size_t candidate_count, std::uint64_t seed) {
  util::Rng rng(seed);
  sched::HolisticAnalysis::Options rebuild_options;
  rebuild_options.prepared_kernel = false;
  const sched::HolisticAnalysis prepared_backend;
  const sched::HolisticAnalysis rebuild_backend(rebuild_options);
  const core::McAnalysis with_kernel(prepared_backend);
  const core::McAnalysis without_kernel(rebuild_backend);

  for (std::size_t c = 0; c < candidate_count; ++c) {
    const CandidateFixture fx = make_candidate(benchmark, rng);
    for (const core::McAnalysis::Mode mode :
         {core::McAnalysis::Mode::kProposed, core::McAnalysis::Mode::kNaive}) {
      SCOPED_TRACE(benchmark.name + " candidate " + std::to_string(c) +
                   (mode == core::McAnalysis::Mode::kProposed ? ", proposed"
                                                              : ", naive"));
      const auto reference = without_kernel.analyze(
          benchmark.arch, fx.system, fx.candidate.drop, mode);
      expect_same_mc_result(reference,
                            with_kernel.analyze(benchmark.arch, fx.system,
                                                fx.candidate.drop, mode));
      util::ThreadPool pool(4);
      expect_same_mc_result(
          reference, with_kernel.analyze(benchmark.arch, fx.system,
                                         fx.candidate.drop, mode, &pool));
    }
  }
}

TEST(PreparedProblemDifferential, McAnalysisKernelOnOffIdenticalSynth1) {
  run_mc_differential(benchmarks::synth_benchmark(1), 12, 77);
}

TEST(PreparedProblemDifferential, McAnalysisKernelOnOffIdenticalSynth2) {
  run_mc_differential(benchmarks::synth_benchmark(2), 8, 88);
}

// Whole-search lockdown: a fixed-seed GA run with the prepared kernel must
// walk the exact same trajectory as one with the rebuild adapter.
TEST(PreparedProblemDifferential, GaTrajectoryIdenticalKernelOnOff) {
  const model::Architecture arch = fixtures::test_arch(2);
  const model::ApplicationSet apps = fixtures::small_mixed_apps();
  sched::HolisticAnalysis::Options rebuild_options;
  rebuild_options.prepared_kernel = false;
  const sched::HolisticAnalysis prepared_backend;
  const sched::HolisticAnalysis rebuild_backend(rebuild_options);

  dse::GaOptions options;
  options.population = 16;
  options.offspring = 16;
  options.generations = 5;
  options.seed = 321;
  options.threads = 2;

  const dse::GaResult a =
      dse::GeneticOptimizer(arch, apps, prepared_backend).run(options);
  const dse::GaResult b =
      dse::GeneticOptimizer(arch, apps, rebuild_backend).run(options);

  EXPECT_EQ(a.evaluations, b.evaluations);
  if (std::isnan(a.best_feasible_power)) {
    EXPECT_TRUE(std::isnan(b.best_feasible_power));
  } else {
    EXPECT_EQ(a.best_feasible_power, b.best_feasible_power);
  }
  ASSERT_EQ(a.archive.size(), b.archive.size());
  for (std::size_t i = 0; i < a.archive.size(); ++i) {
    EXPECT_EQ(a.archive[i].objectives, b.archive[i].objectives);
    EXPECT_EQ(a.archive[i].chromosome, b.archive[i].chromosome);
    EXPECT_EQ(a.archive[i].candidate, b.archive[i].candidate);
  }
}

}  // namespace
