#include "ftmc/sched/priority.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "helpers.hpp"

namespace {

using namespace ftmc;
using sched::assign_priorities;
using sched::PriorityPolicy;

model::ApplicationSet three_graphs() {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("slow_crit", 2, 10, 20, 2000, false, 1e-6));
  graphs.push_back(fixtures::chain_graph("fast_drop", 2, 10, 20, 500, true, 1.0));
  graphs.push_back(
      fixtures::chain_graph("fast_crit", 2, 10, 20, 500, false, 1e-6));
  return model::ApplicationSet(std::move(graphs));
}

TEST(Priority, RanksAreAPermutation) {
  const auto apps = three_graphs();
  for (const auto policy :
       {PriorityPolicy::kCriticalityRateMonotonic,
        PriorityPolicy::kRateMonotonic, PriorityPolicy::kFlatIndex}) {
    const auto ranks = assign_priorities(apps, policy);
    std::set<std::uint32_t> unique(ranks.begin(), ranks.end());
    EXPECT_EQ(unique.size(), apps.task_count());
    EXPECT_EQ(*unique.begin(), 0u);
    EXPECT_EQ(*unique.rbegin(), apps.task_count() - 1);
  }
}

TEST(Priority, CriticalityDominatesPeriod) {
  const auto apps = three_graphs();
  const auto ranks = assign_priorities(
      apps, PriorityPolicy::kCriticalityRateMonotonic);
  // Every critical task outranks every droppable task, even the slow ones.
  for (std::uint32_t v = 0; v < 2; ++v) {
    const auto slow_crit = ranks[apps.flat_index({0, v})];
    const auto fast_crit = ranks[apps.flat_index({2, v})];
    for (std::uint32_t w = 0; w < 2; ++w) {
      const auto fast_drop = ranks[apps.flat_index({1, w})];
      EXPECT_LT(slow_crit, fast_drop);
      EXPECT_LT(fast_crit, fast_drop);
    }
  }
  // Among critical graphs, the shorter period wins.
  EXPECT_LT(ranks[apps.flat_index({2, 0})], ranks[apps.flat_index({0, 0})]);
}

TEST(Priority, RateMonotonicIgnoresCriticality) {
  const auto apps = three_graphs();
  const auto ranks = assign_priorities(apps, PriorityPolicy::kRateMonotonic);
  // fast_drop (500) outranks slow_crit (2000).
  EXPECT_LT(ranks[apps.flat_index({1, 0})], ranks[apps.flat_index({0, 0})]);
}

TEST(Priority, FlatIndexIsIdentity) {
  const auto apps = three_graphs();
  const auto ranks = assign_priorities(apps, PriorityPolicy::kFlatIndex);
  for (std::size_t i = 0; i < ranks.size(); ++i) EXPECT_EQ(ranks[i], i);
}

TEST(Priority, TopologicalTieBreakWithinGraph) {
  const auto apps = three_graphs();
  const auto ranks = assign_priorities(
      apps, PriorityPolicy::kCriticalityRateMonotonic);
  // Within a chain the upstream task gets the higher priority.
  EXPECT_LT(ranks[apps.flat_index({0, 0})], ranks[apps.flat_index({0, 1})]);
  EXPECT_LT(ranks[apps.flat_index({1, 0})], ranks[apps.flat_index({1, 1})]);
}

TEST(Priority, Deterministic) {
  const auto apps = three_graphs();
  EXPECT_EQ(assign_priorities(apps), assign_priorities(apps));
}

}  // namespace
