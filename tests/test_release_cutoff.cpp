// Tests for ExecBounds::release_cutoff — the backend-level encoding of
// "dropped applications release no further instances once the transition
// completed" (Figure 3's task w2) — and its effect through Algorithm 1.
#include <gtest/gtest.h>

#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sched/priority.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using sched::ExecBounds;
using sched::HolisticAnalysis;

TEST(ReleaseCutoff, LaterInstancesStopInterfering) {
  // Interferer: period 250, wcet 50; victim: period 1000, wcet 300, lower
  // priority, one PE.
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("fast", 1, 50, 50, 250, true, 1.0));
  graphs.push_back(
      fixtures::chain_graph("slow", 1, 300, 300, 1000, false, 1e-6));
  const model::ApplicationSet apps{std::move(graphs)};
  const auto arch = fixtures::test_arch(1);
  model::Mapping mapping(apps);
  const auto priorities = sched::assign_priorities(apps);
  const HolisticAnalysis analysis;
  // Same candidate, two bounds vectors: the prepared interface is the
  // production path for exactly this shape (analysis.hpp).
  const auto prepared = analysis.prepare(arch, apps, mapping, priorities);

  // Unbounded: fast instances at 0, 250, 500 all preempt slow.
  std::vector<ExecBounds> bounds{{0, 50}, {300, 300}};
  const auto unbounded = prepared->solve(bounds);
  // slow: 300 own + 2-3 fast jobs.
  EXPECT_GE(unbounded.windows[1].max_finish, 400);

  // Cutoff right after the first fast instance: instances 1+ never release.
  bounds[0].release_cutoff = 100;
  const auto cut = prepared->solve(bounds);
  EXPECT_EQ(cut.windows[1].max_finish, 350);  // 300 + one 50 job
  EXPECT_LT(cut.windows[1].max_finish, unbounded.windows[1].max_finish);
}

TEST(ReleaseCutoff, CutoffBeforeFirstInstanceRemovesAll) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("fast", 1, 50, 50, 250, true, 1.0));
  graphs.push_back(
      fixtures::chain_graph("slow", 1, 300, 300, 1000, false, 1e-6));
  const model::ApplicationSet apps{std::move(graphs)};
  const auto arch = fixtures::test_arch(1);
  model::Mapping mapping(apps);
  const auto priorities = sched::assign_priorities(apps);
  const HolisticAnalysis analysis;
  std::vector<ExecBounds> bounds{{0, 50}, {300, 300}};
  bounds[0].release_cutoff = -1;  // nothing may release
  const auto result =
      analysis.prepare(arch, apps, mapping, priorities)->solve(bounds);
  EXPECT_EQ(result.windows[1].max_finish, 300);
}

TEST(ReleaseCutoff, DefaultIsNoCutoff) {
  const ExecBounds bounds{10, 20};
  EXPECT_EQ(bounds.release_cutoff, sched::kNoCutoff);
}

TEST(McAnalysisCutoff, ScenarioBoundBenefitsFromInstanceExclusion) {
  // Critical chain triggered early + short-period droppable sharing the PE:
  // the proposed bound must beat Naive because the droppable's later
  // instances disappear after the transition.
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("crit", 2, 100, 150, 1000, false, 1e-6));
  graphs.push_back(
      fixtures::chain_graph("noise", 1, 60, 60, 250, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  const auto arch = fixtures::test_arch(1);
  hardening::HardeningPlan plan(apps.task_count());
  plan[0].technique = hardening::Technique::kReexecution;
  plan[0].reexecutions = 1;
  std::vector<model::ProcessorId> mapping(apps.task_count(),
                                          model::ProcessorId{0});
  const auto system = hardening::apply_hardening(apps, plan, mapping, 1);
  const sched::HolisticAnalysis backend;
  const core::McAnalysis analysis(backend);
  const core::DropSet drop{false, true};
  const auto proposed =
      analysis.analyze(arch, system, drop, core::McAnalysis::Mode::kProposed);
  const auto naive =
      analysis.analyze(arch, system, drop, core::McAnalysis::Mode::kNaive);
  const auto id = system.apps.find_graph("crit");
  EXPECT_LT(proposed.graph_wcrt(system.apps, id),
            naive.graph_wcrt(system.apps, id));
}

TEST(McAnalysisCutoff, ProposedNeverAboveNaive) {
  // Randomized sweep: the min-with-Naive combination makes this structural.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    benchmarks::SynthParams params;
    params.seed = seed + 12345;
    params.graph_count = 3;
    const auto apps = benchmarks::synthetic_applications(params);
    const auto arch = fixtures::test_arch(2);
    util::Rng rng(seed);
    const dse::Decoder decoder(arch, apps);
    dse::Chromosome chromosome =
        dse::random_chromosome(decoder.shape(), rng);
    const auto candidate = decoder.decode(chromosome, rng);
    const auto system = hardening::apply_hardening(
        apps, candidate.plan, candidate.base_mapping, 2);
    const sched::HolisticAnalysis backend;
    const core::McAnalysis analysis(backend);
    const auto proposed = analysis.analyze(arch, system, candidate.drop,
                                           core::McAnalysis::Mode::kProposed);
    const auto naive = analysis.analyze(arch, system, candidate.drop,
                                        core::McAnalysis::Mode::kNaive);
    for (std::uint32_t g = 0; g < system.apps.graph_count(); ++g) {
      const model::GraphId id{g};
      EXPECT_LE(proposed.graph_wcrt(system.apps, id),
                naive.graph_wcrt(system.apps, id))
          << "seed " << seed << " graph " << g;
    }
  }
}

}  // namespace
