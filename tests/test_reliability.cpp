#include "ftmc/hardening/reliability.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "helpers.hpp"

namespace {

using namespace ftmc;
using hardening::execution_failure_probability;
using hardening::expected_reexecution_count;
using hardening::majority_failure_probability;
using hardening::scaled_time;
using hardening::standby_activation_probability;
using hardening::task_failure_probability;
using hardening::TaskHardening;
using hardening::Technique;
using model::ProcessorId;

TEST(ScaledTime, RoundsUpAndScales) {
  auto pe = fixtures::test_pe("p");
  pe.speed_factor = 1.5;
  EXPECT_EQ(scaled_time(pe, 10), 15);
  EXPECT_EQ(scaled_time(pe, 1), 2);  // ceil(1.5)
  EXPECT_EQ(scaled_time(pe, 0), 0);
  pe.speed_factor = 1.0;
  EXPECT_EQ(scaled_time(pe, 7), 7);
}

TEST(ExecutionFailure, MatchesExponentialLaw) {
  auto pe = fixtures::test_pe("p", /*fault_rate=*/1e-6);
  const double pf = execution_failure_probability(pe, 1000);
  EXPECT_NEAR(pf, 1.0 - std::exp(-1e-3), 1e-12);
}

TEST(ExecutionFailure, ZeroCases) {
  auto pe = fixtures::test_pe("p", 0.0);
  EXPECT_EQ(execution_failure_probability(pe, 1000), 0.0);
  pe = fixtures::test_pe("p", 1e-6);
  EXPECT_EQ(execution_failure_probability(pe, 0), 0.0);
}

TEST(ExecutionFailure, MonotoneInTimeAndRate) {
  const auto slow = fixtures::test_pe("p", 1e-6);
  EXPECT_LT(execution_failure_probability(slow, 100),
            execution_failure_probability(slow, 200));
  const auto risky = fixtures::test_pe("p", 2e-6);
  EXPECT_LT(execution_failure_probability(slow, 100),
            execution_failure_probability(risky, 100));
}

TEST(MajorityFailure, TripleModularRedundancy) {
  // Classic TMR with identical p: fail iff >= 2 of 3 fail.
  const double p = 0.1;
  const std::array<double, 3> pf{p, p, p};
  const double expected = 3 * p * p * (1 - p) + p * p * p;
  EXPECT_NEAR(majority_failure_probability(pf), expected, 1e-12);
}

TEST(MajorityFailure, Duplication) {
  // n=2 needs both correct (no tie-break).
  const std::array<double, 2> pf{0.1, 0.2};
  EXPECT_NEAR(majority_failure_probability(pf), 1.0 - 0.9 * 0.8, 1e-12);
}

TEST(MajorityFailure, SingleReplicaDegeneratesToPlain) {
  const std::array<double, 1> pf{0.3};
  EXPECT_NEAR(majority_failure_probability(pf), 0.3, 1e-12);
}

TEST(MajorityFailure, PerfectReplicasNeverFail) {
  const std::array<double, 3> pf{0.0, 0.0, 0.0};
  EXPECT_EQ(majority_failure_probability(pf), 0.0);
}

TEST(MajorityFailure, RejectsEmpty) {
  EXPECT_THROW(majority_failure_probability({}), std::invalid_argument);
}

TEST(MajorityFailure, TmrBeatsSimplexForSmallP) {
  const double p = 1e-3;
  const std::array<double, 3> pf{p, p, p};
  EXPECT_LT(majority_failure_probability(pf), p);
}

TEST(ExpectedReexecutions, GeometricSeries) {
  EXPECT_DOUBLE_EQ(expected_reexecution_count(0.0, 3), 1.0);
  EXPECT_DOUBLE_EQ(expected_reexecution_count(0.5, 1), 1.5);
  EXPECT_DOUBLE_EQ(expected_reexecution_count(0.5, 2), 1.75);
  EXPECT_DOUBLE_EQ(expected_reexecution_count(1.0, 3), 4.0);
  EXPECT_DOUBLE_EQ(expected_reexecution_count(0.2, 0), 1.0);
}

TEST(StandbyActivation, Complement) {
  EXPECT_DOUBLE_EQ(standby_activation_probability(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(standby_activation_probability(1.0, 0.0), 1.0);
  EXPECT_NEAR(standby_activation_probability(0.1, 0.2), 1.0 - 0.9 * 0.8,
              1e-12);
}

TEST(TaskFailure, NoneEqualsSingleExecution) {
  const auto arch = fixtures::test_arch(2);
  model::Task task{"t", 10, 100, 3, 2};
  const TaskHardening none;
  EXPECT_NEAR(task_failure_probability(arch, task, none, ProcessorId{0}),
              execution_failure_probability(
                  arch.processor(ProcessorId{0}), 100),
              1e-15);
}

TEST(TaskFailure, ReexecutionIsPowerOfAttempt) {
  const auto arch = fixtures::test_arch(1);
  model::Task task{"t", 10, 100, 3, 2};
  TaskHardening decision;
  decision.technique = Technique::kReexecution;
  decision.reexecutions = 2;
  const double attempt = execution_failure_probability(
      arch.processor(ProcessorId{0}), 102);  // wcet + dt
  EXPECT_NEAR(task_failure_probability(arch, task, decision, ProcessorId{0}),
              std::pow(attempt, 3), 1e-18);
}

TEST(TaskFailure, ActiveReplicationIncludesVoter) {
  const auto arch = fixtures::test_arch(3);
  model::Task task{"t", 10, 100, 3, 2};
  TaskHardening decision;
  decision.technique = Technique::kActiveReplication;
  decision.replica_pes = {ProcessorId{0}, ProcessorId{1}, ProcessorId{2}};
  decision.voter_pe = ProcessorId{0};
  const double p = execution_failure_probability(
      arch.processor(ProcessorId{0}), 100);
  const double replica_fail = 3 * p * p * (1 - p) + p * p * p;
  const double voter_fail =
      execution_failure_probability(arch.processor(ProcessorId{0}), 3);
  EXPECT_NEAR(task_failure_probability(arch, task, decision, ProcessorId{0}),
              1.0 - (1.0 - replica_fail) * (1.0 - voter_fail), 1e-15);
}

TEST(TaskFailure, PassiveReplicationFormula) {
  const auto arch = fixtures::test_arch(3);
  model::Task task{"t", 10, 100, 3, 2};
  TaskHardening decision;
  decision.technique = Technique::kPassiveReplication;
  decision.replica_pes = {ProcessorId{0}, ProcessorId{1}, ProcessorId{2}};
  decision.voter_pe = ProcessorId{1};
  const double p = execution_failure_probability(
      arch.processor(ProcessorId{0}), 100);
  const double success =
      (1 - p) * (1 - p) + 2 * p * (1 - p) * (1 - p);
  const double voter_fail =
      execution_failure_probability(arch.processor(ProcessorId{1}), 3);
  EXPECT_NEAR(task_failure_probability(arch, task, decision, ProcessorId{0}),
              1.0 - success * (1.0 - voter_fail), 1e-15);
}

TEST(TaskFailure, HardeningImprovesOverNone) {
  const auto arch = fixtures::test_arch(3);
  model::Task task{"t", 10, 5000, 3, 2};
  const TaskHardening none;
  const double base =
      task_failure_probability(arch, task, none, ProcessorId{0});

  TaskHardening reexec;
  reexec.technique = Technique::kReexecution;
  reexec.reexecutions = 1;
  EXPECT_LT(task_failure_probability(arch, task, reexec, ProcessorId{0}),
            base);

  TaskHardening active;
  active.technique = Technique::kActiveReplication;
  active.replica_pes = {ProcessorId{0}, ProcessorId{1}, ProcessorId{2}};
  active.voter_pe = ProcessorId{0};
  EXPECT_LT(task_failure_probability(arch, task, active, ProcessorId{0}),
            base);

  TaskHardening passive;
  passive.technique = Technique::kPassiveReplication;
  passive.replica_pes = {ProcessorId{0}, ProcessorId{1}, ProcessorId{2}};
  passive.voter_pe = ProcessorId{0};
  EXPECT_LT(task_failure_probability(arch, task, passive, ProcessorId{0}),
            base);
}

TEST(CheckReliability, UnhardenedTightConstraintFails) {
  const auto arch = fixtures::test_arch(2);
  const auto apps = fixtures::small_mixed_apps();
  const hardening::HardeningPlan plan(apps.task_count());
  std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{0});
  // crit graph has f = 1e-6 per us and 100us tasks at 1e-8 faults/us:
  // failure prob per period ~ 2e-6, rate ~ 2e-9 <= 1e-6 -> satisfied.
  const auto report = hardening::check_reliability(arch, apps, plan, mapping);
  EXPECT_TRUE(report.all_satisfied);
  EXPECT_EQ(report.failure_rate.size(), 2u);
  EXPECT_GT(report.failure_rate[0], 0.0);
}

TEST(CheckReliability, TightConstraintNeedsHardening) {
  const auto arch = fixtures::test_arch(2);
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("tight", 2, 50, 100, 1000, false, 1e-13));
  const model::ApplicationSet apps{std::move(graphs)};
  hardening::HardeningPlan plan(apps.task_count());
  std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{0});

  auto report = hardening::check_reliability(arch, apps, plan, mapping);
  EXPECT_FALSE(report.all_satisfied);

  for (auto& decision : plan) {
    decision.technique = Technique::kReexecution;
    decision.reexecutions = 2;
  }
  report = hardening::check_reliability(arch, apps, plan, mapping);
  EXPECT_TRUE(report.all_satisfied);
}

TEST(CheckReliability, DroppableGraphsAlwaysSatisfied) {
  const auto arch = fixtures::test_arch(1);
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("d", 3, 100, 10000, 20000, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  const hardening::HardeningPlan plan(apps.task_count());
  const std::vector<ProcessorId> mapping(apps.task_count(), ProcessorId{0});
  const auto report = hardening::check_reliability(arch, apps, plan, mapping);
  EXPECT_TRUE(report.all_satisfied);
  EXPECT_TRUE(report.satisfied[0]);
}

TEST(CheckReliability, SizeValidation) {
  const auto arch = fixtures::test_arch(1);
  const auto apps = fixtures::small_mixed_apps();
  EXPECT_THROW(hardening::check_reliability(arch, apps, {}, {}),
               std::invalid_argument);
}

}  // namespace
