#include "ftmc/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace {

using ftmc::util::Rng;

TEST(Rng, SameSeedSameSequence) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t draw = rng.uniform_int(-5, 17);
    EXPECT_GE(draw, -5);
    EXPECT_LE(draw, 17);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, IndexBounds) {
  Rng rng(3);
  for (int i = 0; i < 1'000; ++i) EXPECT_LT(rng.index(13), 13u);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, UniformRealHalfOpen) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double draw = rng.uniform_real(2.0, 3.0);
    EXPECT_GE(draw, 2.0);
    EXPECT_LT(draw, 3.0);
  }
}

TEST(Rng, UniformRealMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform_real();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyTracksProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double draw = rng.normal(10.0, 3.0);
    sum += draw;
    sum2 += draw * draw;
  }
  const double mean = sum / kDraws;
  const double variance = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(variance), 3.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[i] = i;
  const auto original = items;
  rng.shuffle(items);
  EXPECT_NE(items, original);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(31);
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(37);
  const std::vector<int> items{4, 8, 15, 16, 23, 42};
  for (int i = 0; i < 100; ++i) {
    const int picked = rng.pick(items);
    EXPECT_NE(std::find(items.begin(), items.end(), picked), items.end());
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 3);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, BitsLookBalanced) {
  Rng rng(GetParam());
  int ones = 0;
  constexpr int kDraws = 1'000;
  for (int i = 0; i < kDraws; ++i) ones += std::popcount(rng());
  // 64 * 1000 bits, expect ~32000 ones; allow 3%.
  EXPECT_NEAR(ones, 32'000, 1'000);
}

TEST_P(RngSeedSweep, IndexIsRoughlyUniform) {
  Rng rng(GetParam());
  constexpr std::size_t kBuckets = 10;
  std::vector<int> histogram(kBuckets, 0);
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.index(kBuckets)];
  for (int count : histogram)
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets / 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           0xffffffffffffffffULL));

}  // namespace
