// The central soundness property of the reproduction (Section 5.1): the
// Proposed analysis (Algorithm 1) must upper-bound the response time of
// EVERY simulated execution — any fault pattern, any execution times within
// [bcet, wcet], with task dropping in effect — for all non-dropped graphs.
// The Naive estimator must in turn upper-bound the Proposed one.
#include <gtest/gtest.h>

#include "ftmc/benchmarks/cruise.hpp"
#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sim/adhoc.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using core::McAnalysis;

struct Configured {
  const model::Architecture& arch;
  hardening::HardenedSystem system;
  core::DropSet drop;
  std::vector<std::uint32_t> priorities;

  Configured(const model::Architecture& a, const model::ApplicationSet& apps,
             const core::Candidate& candidate)
      : arch(a),
        system(hardening::apply_hardening(apps, candidate.plan,
                                          candidate.base_mapping,
                                          a.processor_count())),
        drop(candidate.drop),
        priorities(sched::assign_priorities(system.apps)) {}
};

/// Checks bound >= every simulated response for non-dropped graphs, over
/// `profiles` random failure profiles.
void expect_bounds_hold(const Configured& config, std::size_t profiles,
                        std::uint64_t seed, double fault_probability) {
  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);
  const auto verdict = analysis.analyze(config.arch, config.system,
                                        config.drop,
                                        McAnalysis::Mode::kProposed);

  sim::MonteCarloOptions options;
  options.profiles = profiles;
  options.seed = seed;
  options.fault_probability = fault_probability;
  options.threads = 2;
  const auto observed = sim::monte_carlo_wcrt(
      config.arch, config.system, config.drop, config.priorities, options);

  for (std::uint32_t g = 0; g < config.system.apps.graph_count(); ++g) {
    if (config.drop[g]) continue;  // dropped graphs carry no guarantee
    if (observed.worst_response[g] < 0) continue;
    EXPECT_GE(verdict.graph_wcrt(config.system.apps, model::GraphId{g}),
              observed.worst_response[g])
        << "graph " << config.system.apps.graph(model::GraphId{g}).name();
  }

  // The ad-hoc trace is one specific execution, so it is also bounded for
  // non-dropped graphs.
  const auto adhoc = sim::adhoc_wcrt(config.arch, config.system, config.drop,
                                     config.priorities);
  for (std::uint32_t g = 0; g < config.system.apps.graph_count(); ++g) {
    if (config.drop[g] || adhoc[g] < 0) continue;
    EXPECT_GE(verdict.graph_wcrt(config.system.apps, model::GraphId{g}),
              adhoc[g])
        << "adhoc, graph "
        << config.system.apps.graph(model::GraphId{g}).name();
  }
}

TEST(Safety, CruiseSampleMappings) {
  const auto cruise = benchmarks::cruise_benchmark();
  for (const auto& config : benchmarks::cruise_sample_configs(cruise)) {
    const Configured configured(cruise.arch, cruise.apps, config.candidate);
    expect_bounds_hold(configured, 300, 17, 0.4);
  }
}

TEST(Safety, NaiveUpperBoundsProposedOnCruise) {
  const auto cruise = benchmarks::cruise_benchmark();
  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);
  for (const auto& config : benchmarks::cruise_sample_configs(cruise)) {
    const Configured configured(cruise.arch, cruise.apps, config.candidate);
    const auto proposed =
        analysis.analyze(configured.arch, configured.system, configured.drop,
                         McAnalysis::Mode::kProposed);
    const auto naive =
        analysis.analyze(configured.arch, configured.system, configured.drop,
                         McAnalysis::Mode::kNaive);
    for (std::uint32_t g = 0; g < configured.system.apps.graph_count(); ++g) {
      const model::GraphId id{g};
      EXPECT_GE(naive.graph_wcrt(configured.system.apps, id),
                proposed.graph_wcrt(configured.system.apps, id))
          << config.name << ", graph " << g;
    }
  }
}

// Property sweep: random synthetic systems, random (repaired) candidates.
class SafetySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafetySweep, AnalysisBoundsSimulation) {
  const std::uint64_t seed = GetParam();
  benchmarks::SynthParams params;
  params.seed = seed;
  params.graph_count = 3;
  params.min_tasks = 3;
  params.max_tasks = 6;
  params.graph_utilization = 0.15;
  const auto apps = benchmarks::synthetic_applications(params);
  const auto arch = fixtures::test_arch(3);

  util::Rng rng(seed * 1000 + 7);
  const dse::Decoder decoder(arch, apps);
  dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
  const core::Candidate candidate = decoder.decode(chromosome, rng);

  const Configured configured(arch, apps, candidate);
  expect_bounds_hold(configured, 150, seed ^ 0xabcd, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafetySweep,
                         ::testing::Range<std::uint64_t>(1, 16));

// Fault-free executions are bounded by the normal-state analysis alone.
class NormalStateSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NormalStateSweep, NormalAnalysisBoundsFaultFreeSim) {
  const std::uint64_t seed = GetParam();
  benchmarks::SynthParams params;
  params.seed = seed + 500;
  params.graph_count = 4;
  const auto apps = benchmarks::synthetic_applications(params);
  const auto arch = fixtures::test_arch(4);

  util::Rng rng(seed);
  const dse::Decoder decoder(arch, apps);
  dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
  const core::Candidate candidate = decoder.decode(chromosome, rng);
  const Configured configured(arch, apps, candidate);

  const sched::HolisticAnalysis backend;
  const McAnalysis analysis(backend);
  const auto verdict = analysis.analyze(configured.arch, configured.system,
                                        configured.drop);

  const sim::Simulator simulator(configured.arch, configured.system,
                                 configured.drop, configured.priorities);
  sim::NoFaults no_faults;
  sim::WcetExecution wcet;
  const auto trace = simulator.run(no_faults, wcet);
  for (std::uint32_t g = 0; g < configured.system.apps.graph_count(); ++g) {
    if (trace.graph_response[g] < 0) continue;
    const auto bound = verdict.normal.graph_wcrt(configured.system.apps,
                                                 model::GraphId{g});
    EXPECT_GE(bound, trace.graph_response[g]) << "graph " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalStateSweep,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
