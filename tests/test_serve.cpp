// Tests for the `ftmc serve` stack: length-prefixed framing (protocol.hpp),
// the strict JSON request parser (json_parse.hpp), and the Server itself —
// whose analyze/simulate "output" fields must be byte-identical to the
// one-shot CLI rendering (pinned here by rendering through the same
// serve::write_*_report functions the CLI uses, over a system file round-
// tripped through the text format).
#include "ftmc/serve/server.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ftmc/core/eval_store.hpp"
#include "ftmc/core/evaluator.hpp"
#include "ftmc/dse/chromosome.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/hardening/hardening.hpp"
#include "ftmc/io/text_format.hpp"
#include "ftmc/obs/json.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/serve/json_parse.hpp"
#include "ftmc/serve/protocol.hpp"
#include "ftmc/serve/reports.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "ftmc/util/file_io.hpp"
#include "ftmc/util/hash.hpp"
#include "ftmc/util/log.hpp"
#include "ftmc/util/rng.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using serve::FrameReader;
using serve::JsonParseError;
using serve::JsonValue;
using serve::ProtocolError;
using serve::Server;
using serve::ServeOptions;
using serve::parse_json;

// --- Framing ----------------------------------------------------------------

TEST(Protocol, FrameFormat) {
  EXPECT_EQ(serve::frame("hello"), "5\nhello");
  EXPECT_EQ(serve::frame(""), "0\n");
}

TEST(Protocol, RoundTripOverPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string first = "{\"multi\nline\": \"payload\"}";
  const std::string second(1000, 'x');
  serve::write_frame(fds[1], first);
  serve::write_frame(fds[1], second);
  ::close(fds[1]);

  FrameReader reader(fds[0]);
  std::string payload;
  ASSERT_TRUE(reader.read(payload));
  EXPECT_EQ(payload, first);
  ASSERT_TRUE(reader.read(payload));
  EXPECT_EQ(payload, second);
  EXPECT_FALSE(reader.read(payload));  // clean EOF
  EXPECT_FALSE(reader.was_interrupted());
  ::close(fds[0]);
}

TEST(Protocol, MalformedPrefixThrows) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "abc\nxyz", 7), 7);
  ::close(fds[1]);
  FrameReader reader(fds[0]);
  std::string payload;
  EXPECT_THROW((void)reader.read(payload), ProtocolError);
  ::close(fds[0]);
}

TEST(Protocol, OversizeLengthThrows) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "999999999\n", 10), 10);
  ::close(fds[1]);
  FrameReader reader(fds[0]);
  std::string payload;
  EXPECT_THROW((void)reader.read(payload), ProtocolError);
  ::close(fds[0]);
}

TEST(Protocol, EofMidPayloadThrows) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "10\nshort", 8), 8);
  ::close(fds[1]);
  FrameReader reader(fds[0]);
  std::string payload;
  EXPECT_THROW((void)reader.read(payload), ProtocolError);
  ::close(fds[0]);
}

// --- JSON parser ------------------------------------------------------------

TEST(JsonParse, ParsesNestedDocument) {
  const JsonValue root = parse_json(
      R"({"id": 7, "name": "x", "flag": true, "none": null,)"
      R"( "list": [1, 2.5, "s"], "sub": {"k": -3e2}})");
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.u64_or("id", 0), 7u);
  EXPECT_EQ(root.str_or("name", ""), "x");
  EXPECT_TRUE(root.bool_or("flag", false));
  EXPECT_TRUE(root.get("none")->is_null());
  ASSERT_EQ(root.get("list")->array.size(), 3u);
  EXPECT_EQ(root.get("list")->array[1].number, 2.5);
  EXPECT_EQ(root.get("sub")->num_or("k", 0.0), -300.0);
}

TEST(JsonParse, DecodesEscapesAndSurrogatePairs) {
  const JsonValue root =
      parse_json(R"({"s": "a\"b\\c\n\t\u00e9\ud83d\ude00"})");
  EXPECT_EQ(root.str_or("s", ""), "a\"b\\c\n\t\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_json("{\"a\": 1} trailing"), JsonParseError);
  EXPECT_THROW((void)parse_json("{\"a\": }"), JsonParseError);
  EXPECT_THROW((void)parse_json("\"unterminated"), JsonParseError);
  EXPECT_THROW((void)parse_json("{\"a\": 1e999}"), JsonParseError);
  EXPECT_THROW((void)parse_json("{\"a\": \"\\ud800\"}"), JsonParseError);
  EXPECT_THROW((void)parse_json("{\"a\": \"raw\ncontrol\"}"),
               JsonParseError);
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += "[";
  EXPECT_THROW((void)parse_json(deep), JsonParseError);
}

TEST(JsonParse, ErrorsNameTheByteOffset) {
  try {
    (void)parse_json("{\"a\": 1} x");
    FAIL();
  } catch (const JsonParseError& error) {
    EXPECT_NE(std::string(error.what()).find("at byte"), std::string::npos);
  }
}

// --- Server -----------------------------------------------------------------

/// Round-trips the standard fixture system through the text format so the
/// server and the expectation both see exactly what a user's file contains.
std::string write_demo_system(const std::string& name) {
  const model::Architecture arch = fixtures::test_arch(2);
  const model::ApplicationSet apps = fixtures::small_mixed_apps();
  const core::Candidate candidate = fixtures::plain_candidate(arch, apps);
  const std::string path =
      ::testing::TempDir() + "ftmc_serve_" + name + ".ftmc";
  std::ofstream out(path);
  io::write_system(out, arch, apps, &candidate);
  return path;
}

ServeOptions demo_options(const std::string& path) {
  ServeOptions options;
  options.system_paths = {path};
  options.threads = 2;
  return options;
}

/// Parses a response and asserts the envelope, returning the result.
JsonValue expect_ok(const std::string& response) {
  const JsonValue root = parse_json(response);
  EXPECT_TRUE(root.bool_or("ok", false)) << response;
  const JsonValue* result = root.get("result");
  EXPECT_NE(result, nullptr) << response;
  return *result;
}

/// Asserts the structured ftmc.rpc.v1 error shape ({code, message,
/// detail?}) and returns the message (what tests grep for).
std::string expect_error(const std::string& response) {
  const JsonValue root = parse_json(response);
  EXPECT_FALSE(root.bool_or("ok", true)) << response;
  EXPECT_EQ(root.str_or("v", ""), serve::kRpcVersion) << response;
  const JsonValue* error = root.get("error");
  EXPECT_NE(error, nullptr) << response;
  if (error == nullptr) return "";
  EXPECT_TRUE(error->is_object()) << response;
  EXPECT_FALSE(error->str_or("code", "").empty()) << response;
  return error->str_or("message", "");
}

/// The error's taxonomy code alone.
std::string expect_error_code(const std::string& response) {
  const JsonValue root = parse_json(response);
  EXPECT_FALSE(root.bool_or("ok", true)) << response;
  const JsonValue* error = root.get("error");
  return error != nullptr ? error->str_or("code", "") : "";
}

TEST(Server, PingEchoesId) {
  const std::string path = write_demo_system("ping");
  Server server(demo_options(path));
  const std::string response =
      server.handle(R"({"v": "ftmc.rpc.v1", "id": "req-1", "method": "ping"})");
  const JsonValue root = parse_json(response);
  EXPECT_EQ(root.str_or("id", ""), "req-1");
  EXPECT_TRUE(expect_ok(response).bool_or("pong", false));
}

TEST(Server, AnalyzeOutputMatchesDirectRendering) {
  const std::string path = write_demo_system("analyze");
  Server server(demo_options(path));
  const JsonValue result =
      expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "id": 1, "method": "analyze"})"));

  // The reference: evaluate + render exactly as the one-shot CLI does.
  const io::SystemSpec spec = io::parse_system_file(path);
  const sched::HolisticAnalysis backend;
  const core::Evaluator evaluator(spec.arch, spec.apps, backend);
  const core::Evaluation evaluation = evaluator.evaluate(*spec.candidate);
  std::ostringstream expected;
  serve::write_analyze_report(expected, spec, *spec.candidate, evaluation);

  EXPECT_EQ(result.str_or("output", ""), expected.str());
  EXPECT_EQ(result.bool_or("feasible", !evaluation.feasible()),
            evaluation.feasible());
  EXPECT_EQ(result.num_or("power", -1.0), evaluation.power);
}

TEST(Server, SimulateOutputMatchesDirectRendering) {
  const std::string path = write_demo_system("simulate");
  Server server(demo_options(path));
  const std::string request =
      R"({"v": "ftmc.rpc.v1", "id": 2, "method": "simulate",)"
      R"( "params": {"profiles": 60, "fault_prob": "0.25", "seed": 9}})";
  const JsonValue result = expect_ok(server.handle(request));

  const io::SystemSpec spec = io::parse_system_file(path);
  const auto system = hardening::apply_hardening(
      spec.apps, spec.candidate->plan, spec.candidate->base_mapping,
      spec.arch.processor_count());
  const auto priorities = sched::assign_priorities(system.apps);
  sim::MonteCarloOptions options;
  options.profiles = 60;
  options.fault_probability = 0.25;
  options.seed = 9;
  options.threads = 2;
  const auto reference = sim::monte_carlo_wcrt(
      spec.arch, system, spec.candidate->drop, priorities, options);
  std::ostringstream expected;
  serve::write_simulate_report(expected, system, reference, 60, "0.25");

  EXPECT_EQ(result.str_or("output", ""), expected.str());
  EXPECT_EQ(result.u64_or("deadline_miss_profiles", ~0ULL),
            reference.deadline_miss_profiles);

  // The resident PreparedSim must not drift: same request, same bytes.
  const JsonValue again = expect_ok(server.handle(request));
  EXPECT_EQ(again.str_or("output", ""), expected.str());
}

TEST(Server, EvaluateHitsTheResidentCacheOnRepeat) {
  const std::string path = write_demo_system("evaluate");
  Server server(demo_options(path));
  const JsonValue first =
      expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "id": 1, "method": "evaluate"})"));
  EXPECT_FALSE(first.bool_or("cache_hit", true));
  const JsonValue second =
      expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "id": 2, "method": "evaluate"})"));
  EXPECT_TRUE(second.bool_or("cache_hit", false));
  EXPECT_EQ(first.num_or("power", -1.0), second.num_or("power", -2.0));
  EXPECT_EQ(first.get("graph_wcrt")->array.size(),
            second.get("graph_wcrt")->array.size());
}

TEST(Server, PersistentStoreWarmsAFreshServer) {
  const std::string path = write_demo_system("store");
  const std::string cache_dir = ::testing::TempDir() + "ftmc_serve_store";
  // A previous run may have left a populated store here; start cold.
  const std::string shard = core::store_directory(
      cache_dir, util::fnv1a_bytes(util::read_file(path)));
  std::remove((shard + "/evals.log").c_str());
  std::remove((shard + "/evals.idx").c_str());
  {
    ServeOptions options = demo_options(path);
    options.cache_dir = cache_dir;
    options.enable_cache = false;  // isolate the L2
    Server server(std::move(options));
    const JsonValue first =
        expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "id": 1, "method": "evaluate"})"));
    EXPECT_FALSE(first.bool_or("cache_hit", true));
    server.flush();
  }
  ServeOptions options = demo_options(path);
  options.cache_dir = cache_dir;
  options.enable_cache = false;
  Server server(std::move(options));
  const JsonValue warmed =
      expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "id": 2, "method": "evaluate"})"));
  EXPECT_TRUE(warmed.bool_or("cache_hit", false));
}

TEST(Server, ErrorPathsFailTheRequestNotTheServer) {
  const std::string path = write_demo_system("errors");
  Server server(demo_options(path));
  EXPECT_NE(expect_error(server.handle("not json")).find("JSON parse"),
            std::string::npos);
  EXPECT_NE(expect_error(server.handle("[1,2]"))
                .find("must be a JSON object"),
            std::string::npos);
  EXPECT_NE(expect_error(server.handle(R"({"v": "ftmc.rpc.v1", "id": 1})")).find("method"),
            std::string::npos);
  EXPECT_NE(expect_error(server.handle(R"({"v": "ftmc.rpc.v1", "method": "frobnicate"})"))
                .find("unknown method"),
            std::string::npos);
  EXPECT_NE(expect_error(
                server.handle(R"({"v": "ftmc.rpc.v1", "method": "analyze", "system": "nope"})"))
                .find("unknown system"),
            std::string::npos);
  EXPECT_NE(
      expect_error(server.handle(
                       R"({"v": "ftmc.rpc.v1", "method": "simulate",)"
                       R"( "params": {"fault_prob": 0.3}})"))
          .find("fault_prob"),
      std::string::npos);
  // The server still answers after five failed requests.
  EXPECT_TRUE(expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "method": "ping"})"))
                  .bool_or("pong", false));
}

TEST(Server, VersionGateRejectsMissingOrWrongVersion) {
  const std::string path = write_demo_system("version");
  Server server(demo_options(path));
  // Every response carries the protocol version, success or failure.
  const JsonValue ok_root = parse_json(
      server.handle(R"({"v": "ftmc.rpc.v1", "id": 1, "method": "ping"})"));
  EXPECT_EQ(ok_root.str_or("v", ""), serve::kRpcVersion);
  EXPECT_TRUE(ok_root.bool_or("ok", false));

  // Missing v at the top level: rejected before the method is looked at.
  const std::string missing = server.handle(R"({"id": 2, "method": "ping"})");
  EXPECT_EQ(expect_error_code(missing), "version_mismatch");
  EXPECT_NE(expect_error(missing).find("ftmc.rpc.v1"), std::string::npos);

  // Wrong or non-string v: same code, and the detail names what arrived.
  EXPECT_EQ(expect_error_code(server.handle(
                R"({"v": "ftmc.rpc.v2", "method": "ping"})")),
            "version_mismatch");
  EXPECT_EQ(expect_error_code(server.handle(
                R"({"v": 1, "method": "ping"})")),
            "version_mismatch");

  // Batch items inherit the envelope's version; an explicit wrong one
  // fails that item alone.
  const JsonValue batch = expect_ok(server.handle(
      R"({"v": "ftmc.rpc.v1", "method": "batch", "params": {"requests": [)"
      R"({"id": "i0", "method": "ping"},)"
      R"({"id": "i1", "v": "ftmc.rpc.v0", "method": "ping"}]}})"));
  ASSERT_EQ(batch.get("results")->array.size(), 2u);
  EXPECT_TRUE(batch.get("results")->array[0].bool_or("ok", false));
  EXPECT_FALSE(batch.get("results")->array[1].bool_or("ok", true));
  EXPECT_EQ(batch.get("results")->array[1].get("error")->str_or("code", ""),
            "version_mismatch");
}

TEST(Server, ErrorCodesFollowTheTaxonomy) {
  const std::string path = write_demo_system("taxonomy");
  Server server(demo_options(path));
  EXPECT_EQ(expect_error_code(server.handle("not json")), "bad_request");
  EXPECT_EQ(expect_error_code(server.handle(
                R"({"v": "ftmc.rpc.v1", "method": "frobnicate"})")),
            "unknown_method");
  EXPECT_EQ(expect_error_code(server.handle(
                R"({"v": "ftmc.rpc.v1", "method": "analyze",)"
                R"( "system": "nope"})")),
            "bad_request");
  EXPECT_EQ(expect_error_code(server.handle(
                R"({"v": "ftmc.rpc.v1", "method": "simulate",)"
                R"( "params": {"fault_prob": 0.3}})")),
            "bad_request");
}

TEST(Server, DrainRefusesWorkMethodsButAnswersIntrospection) {
  const std::string path = write_demo_system("drain_gate");
  Server server(demo_options(path));
  (void)server.handle(R"({"v": "ftmc.rpc.v1", "method": "shutdown"})");
  ASSERT_TRUE(server.stopping());
  // Work-bearing methods are refused with shutting_down...
  for (const char* method : {"analyze", "evaluate", "simulate", "batch"}) {
    const std::string response = server.handle(
        std::string(R"({"v": "ftmc.rpc.v1", "method": ")") + method + "\"}");
    EXPECT_EQ(expect_error_code(response), "shutting_down") << method;
  }
  // ...while introspection still answers so monitors can watch the drain.
  for (const char* method :
       {"ping", "health", "metrics", "stats", "systems", "shutdown"}) {
    const std::string response = server.handle(
        std::string(R"({"v": "ftmc.rpc.v1", "method": ")") + method + "\"}");
    EXPECT_TRUE(parse_json(response).bool_or("ok", false)) << response;
  }
}

TEST(Server, StatsAndShutdown) {
  const std::string path = write_demo_system("stats");
  Server server(demo_options(path));
  (void)server.handle(R"({"v": "ftmc.rpc.v1", "method": "ping"})");
  const JsonValue stats =
      expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "method": "stats"})"));
  EXPECT_GE(stats.u64_or("requests", 0), 2u);
  ASSERT_EQ(stats.get("systems")->array.size(), 1u);
  EXPECT_EQ(stats.get("systems")->array[0].str_or("system", ""), path);

  EXPECT_FALSE(server.stopping());
  const JsonValue shutdown =
      expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "method": "shutdown"})"));
  EXPECT_TRUE(shutdown.bool_or("stopping", false));
  EXPECT_TRUE(server.stopping());
}

TEST(Server, ServeFdDrainsAPrebufferedStream) {
  const std::string path = write_demo_system("fd");
  Server server(demo_options(path));

  int in[2], out[2];
  ASSERT_EQ(::pipe(in), 0);
  ASSERT_EQ(::pipe(out), 0);
  serve::write_frame(in[1], R"({"v": "ftmc.rpc.v1", "id": 1, "method": "ping"})");
  serve::write_frame(in[1], R"({"v": "ftmc.rpc.v1", "id": 2, "method": "systems"})");
  ::close(in[1]);  // EOF after two requests

  EXPECT_EQ(server.serve_fd(in[0], out[1]), 0);
  ::close(in[0]);
  ::close(out[1]);

  FrameReader reader(out[0]);
  std::string payload;
  ASSERT_TRUE(reader.read(payload));
  EXPECT_TRUE(expect_ok(payload).bool_or("pong", false));
  ASSERT_TRUE(reader.read(payload));
  EXPECT_EQ(expect_ok(payload).get("systems")->array.size(), 1u);
  EXPECT_FALSE(reader.read(payload));
  ::close(out[0]);
}

TEST(Server, RejectsDuplicateSystems) {
  const std::string path = write_demo_system("dup");
  ServeOptions options;
  options.system_paths = {path, path};
  EXPECT_THROW(Server server(std::move(options)), std::runtime_error);
}

// --- Concurrent TCP serving -------------------------------------------------

/// One TCP connection speaking the framed protocol.
struct TcpClient {
  int fd = -1;
  std::unique_ptr<FrameReader> reader;

  explicit TcpClient(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
      return;
    }
    reader = std::make_unique<FrameReader>(fd);
  }
  ~TcpClient() { close(); }
  void close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  void send(const std::string& request) { serve::write_frame(fd, request); }
  /// Next response, or "" on EOF.
  std::string recv() {
    std::string payload;
    if (!reader->read(payload)) return "";
    return payload;
  }
  std::string call(const std::string& request) {
    send(request);
    return recv();
  }
};

/// A Server running serve_tcp on its own thread (ephemeral port).
struct TcpServer {
  Server server;
  std::thread thread;
  int exit_code = -1;

  explicit TcpServer(ServeOptions options) : server(std::move(options)) {
    thread = std::thread([this] { exit_code = server.serve_tcp(0, ""); });
    while (server.bound_port() == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ~TcpServer() {
    if (thread.joinable()) shutdown_and_join();
  }
  std::uint16_t port() const { return server.bound_port(); }
  int shutdown_and_join() {
    // Through handle() directly: works even when every connection slot is
    // occupied (handle is thread-safe; the acceptor polls stopping()).
    if (!server.stopping())
      (void)server.handle(R"({"v": "ftmc.rpc.v1", "method": "shutdown"})");
    thread.join();
    return exit_code;
  }
};

/// First evaluate/analyze per server misses the cache; warming both the
/// server under test and the serial reference makes cache_hit (and thus the
/// response bytes) independent of which concurrent request lands first.
void warm(Server& server) {
  (void)server.handle(R"({"v": "ftmc.rpc.v1", "id": "warm-a", "method": "analyze"})");
  (void)server.handle(R"({"v": "ftmc.rpc.v1", "id": "warm-e", "method": "evaluate"})");
  (void)server.handle(
      R"({"v": "ftmc.rpc.v1", "id": "warm-s", "method": "simulate",)"
      R"( "params": {"profiles": 20, "fault_prob": "0.25", "seed": 9}})");
}

TEST(Server, TcpConcurrentMixedStreamsMatchSerialReference) {
  const std::string path = write_demo_system("tcp_concurrent");
  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  static const char* const kMethods[] = {"analyze", "evaluate", "ping",
                                         "simulate"};

  std::vector<std::vector<std::string>> requests(kClients);
  for (int c = 0; c < kClients; ++c)
    for (int i = 0; i < kRequests; ++i) {
      const char* method = kMethods[(c + i) % 4];  // mixed, offset per client
      std::string request = R"({"v": "ftmc.rpc.v1", "id": "c)" + std::to_string(c) + "-" +
                            std::to_string(i) + R"(", "method": ")" + method +
                            "\"";
      if (std::string(method) == "simulate")
        request +=
            R"(, "params": {"profiles": 20, "fault_prob": "0.25", "seed": 9})";
      requests[c].push_back(request + "}");
    }

  // Byte-exact expectations from a warmed serial server.
  Server reference(demo_options(path));
  warm(reference);
  std::vector<std::vector<std::string>> expected(kClients);
  for (int c = 0; c < kClients; ++c)
    for (const std::string& request : requests[c])
      expected[c].push_back(reference.handle(request));

  ServeOptions options = demo_options(path);
  options.max_connections = kClients;
  TcpServer tcp(std::move(options));
  warm(tcp.server);

  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      TcpClient client(tcp.port());
      ASSERT_GE(client.fd, 0);
      for (const std::string& request : requests[c])
        got[c].push_back(client.call(request));
    });
  for (std::thread& client : clients) client.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), expected[c].size());
    for (int i = 0; i < kRequests; ++i)
      EXPECT_EQ(got[c][i], expected[c][i]) << "client " << c << " request "
                                           << i;
  }
  EXPECT_EQ(tcp.shutdown_and_join(), 0);
}

TEST(Server, TcpPipelinedRequestsAnswerInOrder) {
  const std::string path = write_demo_system("tcp_pipeline");
  TcpServer tcp(demo_options(path));
  TcpClient client(tcp.port());
  ASSERT_GE(client.fd, 0);
  constexpr int kFrames = 8;
  // All frames written before any response is read: the session must still
  // answer strictly in request order.
  for (int i = 0; i < kFrames; ++i)
    client.send(R"({"v": "ftmc.rpc.v1", "id": )" + std::to_string(i) +
                R"(, "method": ")" + (i % 2 == 0 ? "ping" : "evaluate") +
                "\"}");
  for (int i = 0; i < kFrames; ++i) {
    const JsonValue root = parse_json(client.recv());
    EXPECT_TRUE(root.bool_or("ok", false));
    EXPECT_EQ(root.u64_or("id", ~0ULL), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(tcp.shutdown_and_join(), 0);
}

TEST(Server, TcpBackpressureStillServesQueuedConnections) {
  const std::string path = write_demo_system("tcp_backpressure");
  ServeOptions options = demo_options(path);
  options.max_connections = 1;
  TcpServer tcp(std::move(options));

  auto first = std::make_unique<TcpClient>(tcp.port());
  ASSERT_GE(first->fd, 0);
  EXPECT_TRUE(expect_ok(first->call(R"({"v": "ftmc.rpc.v1", "id": 1, "method": "ping"})"))
                  .bool_or("pong", false));

  // At the cap the acceptor stops accepting; the second connection sits in
  // the listen backlog with its request already written...
  TcpClient second(tcp.port());
  ASSERT_GE(second.fd, 0);
  second.send(R"({"v": "ftmc.rpc.v1", "id": 2, "method": "ping"})");

  // ...and is served as soon as the first connection ends.
  first->close();
  EXPECT_TRUE(expect_ok(second.recv()).bool_or("pong", false));
  EXPECT_EQ(tcp.shutdown_and_join(), 0);
}

TEST(Server, ShutdownDrainsPipelinedRequestsInFlight) {
  const std::string path = write_demo_system("tcp_drain");
  TcpServer tcp(demo_options(path));
  TcpClient client(tcp.port());
  ASSERT_GE(client.fd, 0);
  // Everything up to and including the shutdown answers; later frames are
  // dropped by the drain (the session stops reading, not mid-response).
  client.send(R"({"v": "ftmc.rpc.v1", "id": 0, "method": "ping"})");
  client.send(R"({"v": "ftmc.rpc.v1", "id": 1, "method": "shutdown"})");
  client.send(R"({"v": "ftmc.rpc.v1", "id": 2, "method": "ping"})");
  client.send(R"({"v": "ftmc.rpc.v1", "id": 3, "method": "ping"})");
  EXPECT_TRUE(expect_ok(client.recv()).bool_or("pong", false));
  EXPECT_TRUE(expect_ok(client.recv()).bool_or("stopping", false));
  EXPECT_EQ(client.recv(), "");  // EOF: drained, not answered
  EXPECT_EQ(tcp.shutdown_and_join(), 0);
}

// --- batch ------------------------------------------------------------------

TEST(Server, BatchFansOutAndPreservesRequestOrder) {
  const std::string path = write_demo_system("batch");
  Server server(demo_options(path));
  warm(server);

  const std::string ping = R"({"v": "ftmc.rpc.v1", "id": "b0", "method": "ping"})";
  const std::string evaluate = R"({"v": "ftmc.rpc.v1", "id": "b1", "method": "evaluate"})";
  const std::string analyze = R"({"v": "ftmc.rpc.v1", "id": "b2", "method": "analyze"})";
  const JsonValue expected_evaluate = expect_ok(server.handle(evaluate));
  const JsonValue expected_analyze = expect_ok(server.handle(analyze));

  const std::string batch =
      R"({"v": "ftmc.rpc.v1", "id": "batch", "method": "batch", "params": {"requests": [)" +
      ping + "," + evaluate + "," + analyze + "]}}";
  const JsonValue result = expect_ok(server.handle(batch));
  EXPECT_EQ(result.u64_or("count", 0), 3u);
  const JsonValue* results = result.get("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), 3u);

  EXPECT_EQ(results->array[0].str_or("id", ""), "b0");
  EXPECT_TRUE(results->array[0].bool_or("ok", false));
  EXPECT_EQ(results->array[1].str_or("id", ""), "b1");
  EXPECT_EQ(results->array[1].get("result")->num_or("power", -1.0),
            expected_evaluate.num_or("power", -2.0));
  EXPECT_EQ(results->array[2].str_or("id", ""), "b2");
  EXPECT_EQ(results->array[2].get("result")->str_or("output", "a"),
            expected_analyze.str_or("output", "b"));

  // A failing item fails that item only, and nested batches are rejected.
  const std::string mixed =
      R"({"v": "ftmc.rpc.v1", "method": "batch", "params": {"requests": [)"
      R"({"v": "ftmc.rpc.v1", "id": "x", "method": "frobnicate"},)" +
      ping +
      R"(, {"id": "n", "method": "batch", "params": {"requests": []}}]}})";
  const JsonValue partial = expect_ok(server.handle(mixed));
  ASSERT_EQ(partial.get("results")->array.size(), 3u);
  EXPECT_FALSE(partial.get("results")->array[0].bool_or("ok", true));
  EXPECT_TRUE(partial.get("results")->array[1].bool_or("ok", false));
  const JsonValue* nested_error = partial.get("results")->array[2].get("error");
  ASSERT_NE(nested_error, nullptr);
  EXPECT_NE(nested_error->str_or("message", "").find("batch"),
            std::string::npos);
}

// --- inline candidates ------------------------------------------------------

/// The file's own candidate block, verbatim (to_text appends it after the
/// architecture/application body).
std::string candidate_block(const io::SystemSpec& spec) {
  const std::string body = io::to_text(spec.arch, spec.apps, nullptr);
  const std::string full =
      io::to_text(spec.arch, spec.apps, &*spec.candidate);
  EXPECT_EQ(full.compare(0, body.size(), body), 0);
  return full.substr(body.size());
}

TEST(Server, InlineCandidateMatchesResidentEvaluate) {
  const std::string path = write_demo_system("inline_candidate");
  Server server(demo_options(path));
  const io::SystemSpec spec = io::parse_system_file(path);

  const JsonValue resident =
      expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "id": 1, "method": "evaluate"})"));
  const std::string request =
      obs::Json::object()
          .set("v", serve::kRpcVersion)
          .set("id", "inline")
          .set("method", "evaluate")
          .set("params",
               obs::Json::object().set("candidate", candidate_block(spec)))
          .dump();
  const JsonValue inline_result = expect_ok(server.handle(request));

  EXPECT_EQ(inline_result.num_or("power", -1.0),
            resident.num_or("power", -2.0));
  EXPECT_EQ(inline_result.num_or("service", -1.0),
            resident.num_or("service", -2.0));
  EXPECT_EQ(inline_result.bool_or("feasible", false),
            resident.bool_or("feasible", true));
  ASSERT_EQ(inline_result.get("graph_wcrt")->array.size(),
            resident.get("graph_wcrt")->array.size());
  for (std::size_t g = 0; g < resident.get("graph_wcrt")->array.size(); ++g)
    EXPECT_EQ(inline_result.get("graph_wcrt")->array[g].number,
              resident.get("graph_wcrt")->array[g].number);

  // The analyze rendering is equally candidate-driven: inline == resident.
  const JsonValue analyzed =
      expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "id": 2, "method": "analyze"})"));
  const std::string analyze_inline =
      obs::Json::object()
          .set("v", serve::kRpcVersion)
          .set("id", "ia")
          .set("method", "analyze")
          .set("params",
               obs::Json::object().set("candidate", candidate_block(spec)))
          .dump();
  EXPECT_EQ(expect_ok(server.handle(analyze_inline)).str_or("output", "x"),
            analyzed.str_or("output", "y"));
}

TEST(Server, InlineCandidateServesSystemsWithoutACandidateBlock) {
  const model::Architecture arch = fixtures::test_arch(2);
  const model::ApplicationSet apps = fixtures::small_mixed_apps();
  const std::string path = ::testing::TempDir() + "ftmc_serve_bare.ftmc";
  {
    std::ofstream out(path);
    io::write_system(out, arch, apps, nullptr);
  }
  Server server(demo_options(path));
  // Without params the request fails and the error names the way out.
  EXPECT_NE(expect_error(server.handle(R"({"v": "ftmc.rpc.v1", "method": "evaluate"})"))
                .find("params.candidate"),
            std::string::npos);

  const core::Candidate candidate = fixtures::plain_candidate(arch, apps);
  const std::string block = candidate_block(
      io::SystemSpec{arch, apps, candidate});
  const std::string request =
      obs::Json::object()
          .set("v", serve::kRpcVersion)
          .set("id", 1)
          .set("method", "evaluate")
          .set("params", obs::Json::object().set("candidate", block))
          .dump();
  const JsonValue result = expect_ok(server.handle(request));
  EXPECT_GT(result.num_or("power", 0.0), 0.0);
}

TEST(Server, ChromosomeEvaluateMatchesInProcessDecode) {
  const std::string path = write_demo_system("chromosome");
  Server server(demo_options(path));
  const io::SystemSpec spec = io::parse_system_file(path);

  const dse::Decoder decoder(spec.arch, spec.apps);
  util::Rng rng(42);
  const dse::Chromosome chromosome =
      dse::random_chromosome(decoder.shape(), rng);

  // Reference: decode exactly as the GA would with campaign seed 7 —
  // content-seeded RNG over the *undecoded* genotype — then evaluate.
  dse::Chromosome repaired = chromosome;
  util::Rng decode_rng(dse::chromosome_hash(chromosome, 7));
  const core::Candidate expected_candidate =
      decoder.decode(repaired, decode_rng);
  const sched::HolisticAnalysis backend;
  const core::Evaluator evaluator(spec.arch, spec.apps, backend);
  const core::Evaluation expected = evaluator.evaluate(expected_candidate);

  obs::Json allocation = obs::Json::array();
  for (const std::uint8_t bit : chromosome.allocation)
    allocation.push(obs::Json::integer(bit));
  obs::Json keep = obs::Json::array();
  for (const std::uint8_t bit : chromosome.keep)
    keep.push(obs::Json::integer(bit));
  obs::Json tasks = obs::Json::array();
  for (const dse::TaskGenes& task : chromosome.tasks) {
    obs::Json row = obs::Json::array();
    row.push(obs::Json::integer(static_cast<int>(task.technique)));
    row.push(obs::Json::integer(task.reexec));
    row.push(obs::Json::integer(task.active_n));
    row.push(obs::Json::integer(task.base_pe));
    for (const std::uint16_t pe : task.replica_pe)
      row.push(obs::Json::integer(pe));
    row.push(obs::Json::integer(task.voter_pe));
    tasks.push(std::move(row));
  }
  const std::string request =
      obs::Json::object()
          .set("v", serve::kRpcVersion)
          .set("id", "chromosome")
          .set("method", "evaluate")
          .set("params", obs::Json::object()
                             .set("seed", 7)
                             .set("chromosome",
                                  obs::Json::object()
                                      .set("allocation", std::move(allocation))
                                      .set("keep", std::move(keep))
                                      .set("tasks", std::move(tasks))))
          .dump();
  const JsonValue result = expect_ok(server.handle(request));

  EXPECT_EQ(result.bool_or("feasible", !expected.feasible()),
            expected.feasible());
  EXPECT_EQ(result.num_or("power", -1.0), expected.power);
  EXPECT_EQ(result.num_or("service", -1.0), expected.service);
  ASSERT_EQ(result.get("graph_wcrt")->array.size(),
            expected.graph_wcrt.size());
  for (std::size_t g = 0; g < expected.graph_wcrt.size(); ++g)
    EXPECT_EQ(static_cast<model::Time>(
                  result.get("graph_wcrt")->array[g].number),
              expected.graph_wcrt[g]);
}

TEST(Server, CandidateParameterErrorPaths) {
  const std::string path = write_demo_system("candidate_errors");
  Server server(demo_options(path));
  EXPECT_NE(
      expect_error(server.handle(
                       R"({"v": "ftmc.rpc.v1", "method": "evaluate", "params":)"
                       R"( {"candidate": "x", "chromosome": {}}})"))
          .find("not both"),
      std::string::npos);
  EXPECT_NE(expect_error(server.handle(
                             R"({"v": "ftmc.rpc.v1", "method": "evaluate", "params":)"
                             R"( {"candidate": 17}})"))
                .find("must be a string"),
            std::string::npos);
  EXPECT_NE(expect_error(server.handle(
                             R"({"v": "ftmc.rpc.v1", "method": "evaluate", "params":)"
                             R"( {"candidate": "garbage {{{"}})"))
                .find("params.candidate"),
            std::string::npos);
  EXPECT_NE(expect_error(server.handle(
                             R"({"v": "ftmc.rpc.v1", "method": "evaluate", "params":)"
                             R"( {"candidate": ""}})"))
                .find("no candidate block"),
            std::string::npos);
  EXPECT_NE(expect_error(server.handle(
                             R"({"v": "ftmc.rpc.v1", "method": "analyze", "params":)"
                             R"( {"chromosome": {"allocation": [1],)"
                             R"( "keep": [1], "tasks": []}}})"))
                .find("does not fit"),
            std::string::npos);
  EXPECT_NE(expect_error(server.handle(
                             R"({"v": "ftmc.rpc.v1", "method": "analyze", "params":)"
                             R"( {"chromosome": {"allocation": [1, 1],)"
                             R"( "keep": [1], "tasks": [[0, 1]]}}})"))
                .find("rows must be"),
            std::string::npos);
  // The server still answers normally afterwards.
  EXPECT_TRUE(expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "method": "ping"})"))
                  .bool_or("pong", false));
}

// --- Observability ----------------------------------------------------------

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "ftmc_serve_obs_" + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

/// One access-log record, schema-checked: required keys, stage breakdown
/// summing to total_us, error class only on failures.
JsonValue check_access_record(const std::string& line) {
  const JsonValue record = parse_json(line);
  EXPECT_TRUE(record.is_object()) << line;
  EXPECT_GT(record.u64_or("ts_ms", 0), 0u) << line;
  EXPECT_FALSE(record.str_or("id", "").empty()) << line;
  // A request that never parsed has no method to record.
  if (record.str_or("error", "") != "bad_request") {
    EXPECT_FALSE(record.str_or("method", "").empty()) << line;
  }
  const JsonValue* stages = record.get("us");
  EXPECT_NE(stages, nullptr) << line;
  std::uint64_t sum = 0;
  for (const char* stage : {"read", "parse", "dispatch", "render", "write"}) {
    const JsonValue* value = stages->get(stage);
    EXPECT_NE(value, nullptr) << stage << " missing: " << line;
    if (value != nullptr) sum += static_cast<std::uint64_t>(value->number);
  }
  EXPECT_EQ(record.u64_or("total_us", ~0ULL), sum) << line;
  if (record.bool_or("ok", true)) {
    EXPECT_EQ(record.get("error"), nullptr) << line;
  } else {
    EXPECT_FALSE(record.str_or("error", "").empty()) << line;
  }
  return record;
}

TEST(ServeObservability, ResponsesByteIdenticalWithTelemetryEnabled) {
  const std::string path = write_demo_system("obs_identity");
  ServeOptions plain_options = demo_options(path);
  plain_options.sample_interval_ms = 0;
  Server plain(std::move(plain_options));
  ServeOptions traced_options = demo_options(path);
  traced_options.access_log = temp_path("identity.jsonl");
  traced_options.sample_interval_ms = 2;
  traced_options.slow_ms = 60000;  // armed but never tripped here
  std::remove(traced_options.access_log.c_str());
  Server traced(std::move(traced_options));
  warm(plain);
  warm(traced);

  const std::string requests[] = {
      R"({"v": "ftmc.rpc.v1", "id": "x1", "method": "analyze"})",
      R"({"v": "ftmc.rpc.v1", "id": "x2", "method": "evaluate"})",
      R"({"v": "ftmc.rpc.v1", "id": "x3", "method": "simulate",)"
      R"( "params": {"profiles": 50, "fault_prob": "0.25", "seed": 9}})",
      R"({"v": "ftmc.rpc.v1", "id": 44, "method": "ping"})",
      R"({"v": "ftmc.rpc.v1", "method": "stats"})",
      R"({"v": "ftmc.rpc.v1", "id": "x5", "method": "nope"})",  // error path must match too
      R"(not json at all)",                 // parse-error path as well
  };
  for (const std::string& request : requests)
    EXPECT_EQ(plain.handle(request), traced.handle(request)) << request;
}

TEST(ServeObservability, AccessLogRecordsEveryRequestWithStageBreakdown) {
  const std::string path = write_demo_system("obs_access");
  const std::string log_path = temp_path("access.jsonl");
  std::remove(log_path.c_str());
  ServeOptions options = demo_options(path);
  options.access_log = log_path;
  options.sample_interval_ms = 0;
  {
    Server server(std::move(options));
    (void)server.handle(R"({"v": "ftmc.rpc.v1", "id": "a1", "method": "analyze"})");
    (void)server.handle(R"({"v": "ftmc.rpc.v1", "id": 12, "method": "evaluate"})");
    (void)server.handle(R"({"v": "ftmc.rpc.v1", "method": "ping"})");       // id generated
    (void)server.handle(R"({"v": "ftmc.rpc.v1", "id": "a4", "method": "nope"})");
    (void)server.handle(R"(garbage)");                  // parse error
  }  // destructor closes (and flushes) the log fd

  const std::vector<std::string> lines = read_lines(log_path);
  ASSERT_EQ(lines.size(), 5u);
  const JsonValue analyze = check_access_record(lines[0]);
  EXPECT_EQ(analyze.str_or("id", ""), "a1");
  EXPECT_EQ(analyze.str_or("method", ""), "analyze");
  EXPECT_EQ(analyze.str_or("system", ""), path);
  EXPECT_TRUE(analyze.bool_or("ok", false));
  ASSERT_NE(analyze.get("cache"), nullptr);  // analyze reports cache outcome
  EXPECT_GT(analyze.u64_or("bytes_in", 0), 0u);
  EXPECT_GT(analyze.u64_or("bytes_out", 0), 0u);

  const JsonValue evaluate = check_access_record(lines[1]);
  EXPECT_EQ(evaluate.str_or("id", ""), "12");  // numeric id, echoed as text

  const JsonValue ping = check_access_record(lines[2]);
  EXPECT_EQ(ping.str_or("id", "").rfind("r", 0), 0u) << "generated id";
  EXPECT_EQ(ping.get("cache"), nullptr);  // ping has no cache outcome

  const JsonValue unknown = check_access_record(lines[3]);
  EXPECT_FALSE(unknown.bool_or("ok", true));
  EXPECT_EQ(unknown.str_or("error", ""), "unknown_method");

  const JsonValue garbage = check_access_record(lines[4]);
  EXPECT_FALSE(garbage.bool_or("ok", true));
  EXPECT_EQ(garbage.str_or("error", ""), "bad_request");
}

TEST(ServeObservability, BatchLogsOneTopLevelRecordWithClientId) {
  const std::string path = write_demo_system("obs_batch");
  const std::string log_path = temp_path("batch.jsonl");
  std::remove(log_path.c_str());
  ServeOptions options = demo_options(path);
  options.access_log = log_path;
  options.sample_interval_ms = 0;
  {
    Server server(std::move(options));
    const JsonValue result = expect_ok(server.handle(
        R"({"v": "ftmc.rpc.v1", "id": "B7", "method": "batch", "params": {"requests": [)"
        R"({"v": "ftmc.rpc.v1", "id": "s1", "method": "ping"},)"
        R"({"v": "ftmc.rpc.v1", "id": "s2", "method": "ping"}]}})"));
    EXPECT_EQ(result.u64_or("count", 0), 2u);
  }
  const std::vector<std::string> lines = read_lines(log_path);
  ASSERT_EQ(lines.size(), 1u);  // sub-requests ride inside the batch record
  const JsonValue record = check_access_record(lines[0]);
  EXPECT_EQ(record.str_or("id", ""), "B7");
  EXPECT_EQ(record.str_or("method", ""), "batch");
}

TEST(ServeObservability, SlowRequestsEscalateToMainLog) {
  const std::string path = write_demo_system("obs_slow");
  ServeOptions options = demo_options(path);
  options.slow_ms = 1;  // any analysis-bearing request trips this
  options.sample_interval_ms = 0;
  Server server(std::move(options));
  std::ostringstream sink;
  util::Logger::instance().set_sink(&sink);
  // The workload must out-run the 1ms threshold even on a fast machine:
  // keep doubling the Monte-Carlo profile count until the request trips it.
  for (std::uint64_t profiles = 2000; profiles <= 512000; profiles *= 2) {
    (void)server.handle(
        R"({"v": "ftmc.rpc.v1", "id": "slow", "method": "simulate", "params": {"profiles": )" +
        std::to_string(profiles) + R"(, "fault_prob": "0.25", "seed": 9}})");
    if (sink.str().find("slow request") != std::string::npos) break;
  }
  util::Logger::instance().set_sink(nullptr);
  EXPECT_NE(sink.str().find("slow request"), std::string::npos) << sink.str();
  EXPECT_NE(sink.str().find("id=slow"), std::string::npos) << sink.str();
}

TEST(ServeObservability, MetricsMethodRoundTripsSchema) {
  const std::string path = write_demo_system("obs_metrics");
  ServeOptions options = demo_options(path);
  options.sample_interval_ms = 0;  // sampling off: window must be null
  Server server(std::move(options));
  (void)server.handle(R"({"v": "ftmc.rpc.v1", "method": "ping"})");
  const JsonValue off = expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "method": "metrics"})"));
  const JsonValue* metrics = off.get("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->str_or("schema", ""), "ftmc.metrics.v1");
  ASSERT_NE(metrics->get("counters"), nullptr);
  ASSERT_NE(off.get("window"), nullptr);
  EXPECT_TRUE(off.get("window")->is_null());

  const JsonValue prom = expect_ok(
      server.handle(R"({"v": "ftmc.rpc.v1", "method": "metrics", "params":)"
                    R"( {"format": "prometheus"}})"));
  EXPECT_EQ(prom.str_or("format", ""), "prometheus");
  ASSERT_NE(prom.get("body"), nullptr);
#if !defined(FTMC_OBS_DISABLED)
  EXPECT_NE(prom.get("body")->string.find("# TYPE ftmc_serve_requests"),
            std::string::npos);
#endif
  EXPECT_NE(expect_error(server.handle(
                             R"({"v": "ftmc.rpc.v1", "method": "metrics", "params":)"
                             R"( {"format": "xml"}})"))
                .find("format"),
            std::string::npos);
}

TEST(ServeObservability, MetricsWindowReportsRatesOnceSampled) {
  const std::string path = write_demo_system("obs_window");
  ServeOptions options = demo_options(path);
  options.sample_interval_ms = 2;
  Server server(std::move(options));
  (void)server.handle(R"({"v": "ftmc.rpc.v1", "method": "ping"})");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::uint64_t samples = 0;
  JsonValue window;
  while (std::chrono::steady_clock::now() < deadline) {
    const JsonValue result =
        expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "method": "metrics"})"));
    const JsonValue* w = result.get("window");
    ASSERT_NE(w, nullptr);
    ASSERT_FALSE(w->is_null());  // sampler on: the window is always present
    samples = w->u64_or("samples", 0);
    if (samples > 0) {
      window = *w;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(samples, 0u) << "sampler took no sample within the deadline";
  EXPECT_GT(window.num_or("seconds", 0.0), 0.0);
  const JsonValue* rates = window.get("rates");
  ASSERT_NE(rates, nullptr);
  for (const char* key :
       {"requests_per_s", "scenarios_per_s", "sim_events_per_s"})
    EXPECT_NE(rates->get(key), nullptr) << key;
  EXPECT_NE(window.get("cache_hit_rate"), nullptr);
  ASSERT_NE(window.get("latency"), nullptr);
#if !defined(FTMC_OBS_DISABLED)
  // The pings we issued must eventually show up as per-method latency.
  const auto method_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool saw_ping = false;
  while (!saw_ping && std::chrono::steady_clock::now() < method_deadline) {
    (void)server.handle(R"({"v": "ftmc.rpc.v1", "method": "ping"})");
    const JsonValue result =
        expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "method": "metrics"})"));
    const JsonValue* latency = result.get("window")->get("latency");
    if (latency != nullptr && latency->get("ping") != nullptr) {
      const JsonValue* ping = latency->get("ping");
      EXPECT_GT(ping->u64_or("count", 0), 0u);
      EXPECT_GE(ping->num_or("p95_us", -1.0), ping->num_or("p50_us", 0.0));
      saw_ping = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(saw_ping) << "ping latency never appeared in the window";
#endif
}

TEST(ServeObservability, HealthReportsReadyThenDraining) {
  const std::string path = write_demo_system("obs_health");
  ServeOptions options = demo_options(path);
  options.sample_interval_ms = 0;
  Server server(std::move(options));
  const JsonValue ready = expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "method": "health"})"));
  EXPECT_EQ(ready.str_or("status", ""), "ready");
  EXPECT_GE(ready.num_or("uptime_s", -1.0), 0.0);
  EXPECT_EQ(ready.u64_or("inflight", 99), 1u);  // this very request
  EXPECT_FALSE(ready.bool_or("sampling", true));
  const JsonValue* systems = ready.get("systems");
  ASSERT_NE(systems, nullptr);
  ASSERT_EQ(systems->array.size(), 1u);
  EXPECT_EQ(systems->array[0].str_or("system", ""), path);
  EXPECT_TRUE(systems->array[0].bool_or("candidate", false));
  ASSERT_NE(systems->array[0].get("store_records"), nullptr);
  EXPECT_TRUE(systems->array[0].get("store_records")->is_null());  // no L2

  (void)server.handle(R"({"v": "ftmc.rpc.v1", "method": "shutdown"})");
  const JsonValue draining =
      expect_ok(server.handle(R"({"v": "ftmc.rpc.v1", "method": "health"})"));
  EXPECT_EQ(draining.str_or("status", ""), "draining");
  EXPECT_GE(draining.u64_or("requests", 0), 3u);
}

TEST(ServeObservability, PromTextfileRewrittenBySampler) {
  const std::string path = write_demo_system("obs_prom");
  const std::string prom_path = temp_path("metrics.prom");
  std::remove(prom_path.c_str());
  ServeOptions options = demo_options(path);
  options.sample_interval_ms = 2;
  options.prom_textfile = prom_path;
  {
    Server server(std::move(options));
    (void)server.handle(R"({"v": "ftmc.rpc.v1", "method": "ping"})");
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (read_lines(prom_path).empty() &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::vector<std::string> lines = read_lines(prom_path);
#if !defined(FTMC_OBS_DISABLED)
  ASSERT_FALSE(lines.empty()) << "sampler never exported the textfile";
  bool found = false;
  for (const std::string& line : lines)
    if (line.rfind("ftmc_", 0) == 0 || line.rfind("# TYPE ftmc_", 0) == 0)
      found = true;
  EXPECT_TRUE(found) << "exposition carries no ftmc_ series";
#endif
}

TEST(ServeObservability, PromTextfileWithoutSamplerIsRejected) {
  const std::string path = write_demo_system("obs_prom_reject");
  ServeOptions options = demo_options(path);
  options.sample_interval_ms = 0;
  options.prom_textfile = temp_path("rejected.prom");
  EXPECT_THROW(Server server(std::move(options)), std::runtime_error);
}

}  // namespace
