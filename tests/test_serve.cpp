// Tests for the `ftmc serve` stack: length-prefixed framing (protocol.hpp),
// the strict JSON request parser (json_parse.hpp), and the Server itself —
// whose analyze/simulate "output" fields must be byte-identical to the
// one-shot CLI rendering (pinned here by rendering through the same
// serve::write_*_report functions the CLI uses, over a system file round-
// tripped through the text format).
#include "ftmc/serve/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "ftmc/core/eval_store.hpp"
#include "ftmc/core/evaluator.hpp"
#include "ftmc/hardening/hardening.hpp"
#include "ftmc/io/text_format.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/serve/json_parse.hpp"
#include "ftmc/serve/protocol.hpp"
#include "ftmc/serve/reports.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "ftmc/util/file_io.hpp"
#include "ftmc/util/hash.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using serve::FrameReader;
using serve::JsonParseError;
using serve::JsonValue;
using serve::ProtocolError;
using serve::Server;
using serve::ServeOptions;
using serve::parse_json;

// --- Framing ----------------------------------------------------------------

TEST(Protocol, FrameFormat) {
  EXPECT_EQ(serve::frame("hello"), "5\nhello");
  EXPECT_EQ(serve::frame(""), "0\n");
}

TEST(Protocol, RoundTripOverPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string first = "{\"multi\nline\": \"payload\"}";
  const std::string second(1000, 'x');
  serve::write_frame(fds[1], first);
  serve::write_frame(fds[1], second);
  ::close(fds[1]);

  FrameReader reader(fds[0]);
  std::string payload;
  ASSERT_TRUE(reader.read(payload));
  EXPECT_EQ(payload, first);
  ASSERT_TRUE(reader.read(payload));
  EXPECT_EQ(payload, second);
  EXPECT_FALSE(reader.read(payload));  // clean EOF
  EXPECT_FALSE(reader.was_interrupted());
  ::close(fds[0]);
}

TEST(Protocol, MalformedPrefixThrows) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "abc\nxyz", 7), 7);
  ::close(fds[1]);
  FrameReader reader(fds[0]);
  std::string payload;
  EXPECT_THROW((void)reader.read(payload), ProtocolError);
  ::close(fds[0]);
}

TEST(Protocol, OversizeLengthThrows) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "999999999\n", 10), 10);
  ::close(fds[1]);
  FrameReader reader(fds[0]);
  std::string payload;
  EXPECT_THROW((void)reader.read(payload), ProtocolError);
  ::close(fds[0]);
}

TEST(Protocol, EofMidPayloadThrows) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "10\nshort", 8), 8);
  ::close(fds[1]);
  FrameReader reader(fds[0]);
  std::string payload;
  EXPECT_THROW((void)reader.read(payload), ProtocolError);
  ::close(fds[0]);
}

// --- JSON parser ------------------------------------------------------------

TEST(JsonParse, ParsesNestedDocument) {
  const JsonValue root = parse_json(
      R"({"id": 7, "name": "x", "flag": true, "none": null,)"
      R"( "list": [1, 2.5, "s"], "sub": {"k": -3e2}})");
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.u64_or("id", 0), 7u);
  EXPECT_EQ(root.str_or("name", ""), "x");
  EXPECT_TRUE(root.bool_or("flag", false));
  EXPECT_TRUE(root.get("none")->is_null());
  ASSERT_EQ(root.get("list")->array.size(), 3u);
  EXPECT_EQ(root.get("list")->array[1].number, 2.5);
  EXPECT_EQ(root.get("sub")->num_or("k", 0.0), -300.0);
}

TEST(JsonParse, DecodesEscapesAndSurrogatePairs) {
  const JsonValue root =
      parse_json(R"({"s": "a\"b\\c\n\t\u00e9\ud83d\ude00"})");
  EXPECT_EQ(root.str_or("s", ""), "a\"b\\c\n\t\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_json("{\"a\": 1} trailing"), JsonParseError);
  EXPECT_THROW((void)parse_json("{\"a\": }"), JsonParseError);
  EXPECT_THROW((void)parse_json("\"unterminated"), JsonParseError);
  EXPECT_THROW((void)parse_json("{\"a\": 1e999}"), JsonParseError);
  EXPECT_THROW((void)parse_json("{\"a\": \"\\ud800\"}"), JsonParseError);
  EXPECT_THROW((void)parse_json("{\"a\": \"raw\ncontrol\"}"),
               JsonParseError);
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += "[";
  EXPECT_THROW((void)parse_json(deep), JsonParseError);
}

TEST(JsonParse, ErrorsNameTheByteOffset) {
  try {
    (void)parse_json("{\"a\": 1} x");
    FAIL();
  } catch (const JsonParseError& error) {
    EXPECT_NE(std::string(error.what()).find("at byte"), std::string::npos);
  }
}

// --- Server -----------------------------------------------------------------

/// Round-trips the standard fixture system through the text format so the
/// server and the expectation both see exactly what a user's file contains.
std::string write_demo_system(const std::string& name) {
  const model::Architecture arch = fixtures::test_arch(2);
  const model::ApplicationSet apps = fixtures::small_mixed_apps();
  const core::Candidate candidate = fixtures::plain_candidate(arch, apps);
  const std::string path =
      ::testing::TempDir() + "ftmc_serve_" + name + ".ftmc";
  std::ofstream out(path);
  io::write_system(out, arch, apps, &candidate);
  return path;
}

ServeOptions demo_options(const std::string& path) {
  ServeOptions options;
  options.system_paths = {path};
  options.threads = 2;
  return options;
}

/// Parses a response and asserts the envelope, returning the result.
JsonValue expect_ok(const std::string& response) {
  const JsonValue root = parse_json(response);
  EXPECT_TRUE(root.bool_or("ok", false)) << response;
  const JsonValue* result = root.get("result");
  EXPECT_NE(result, nullptr) << response;
  return *result;
}

std::string expect_error(const std::string& response) {
  const JsonValue root = parse_json(response);
  EXPECT_FALSE(root.bool_or("ok", true)) << response;
  return root.str_or("error", "");
}

TEST(Server, PingEchoesId) {
  const std::string path = write_demo_system("ping");
  Server server(demo_options(path));
  const std::string response =
      server.handle(R"({"id": "req-1", "method": "ping"})");
  const JsonValue root = parse_json(response);
  EXPECT_EQ(root.str_or("id", ""), "req-1");
  EXPECT_TRUE(expect_ok(response).bool_or("pong", false));
}

TEST(Server, AnalyzeOutputMatchesDirectRendering) {
  const std::string path = write_demo_system("analyze");
  Server server(demo_options(path));
  const JsonValue result =
      expect_ok(server.handle(R"({"id": 1, "method": "analyze"})"));

  // The reference: evaluate + render exactly as the one-shot CLI does.
  const io::SystemSpec spec = io::parse_system_file(path);
  const sched::HolisticAnalysis backend;
  const core::Evaluator evaluator(spec.arch, spec.apps, backend);
  const core::Evaluation evaluation = evaluator.evaluate(*spec.candidate);
  std::ostringstream expected;
  serve::write_analyze_report(expected, spec, *spec.candidate, evaluation);

  EXPECT_EQ(result.str_or("output", ""), expected.str());
  EXPECT_EQ(result.bool_or("feasible", !evaluation.feasible()),
            evaluation.feasible());
  EXPECT_EQ(result.num_or("power", -1.0), evaluation.power);
}

TEST(Server, SimulateOutputMatchesDirectRendering) {
  const std::string path = write_demo_system("simulate");
  Server server(demo_options(path));
  const std::string request =
      R"({"id": 2, "method": "simulate",)"
      R"( "params": {"profiles": 60, "fault_prob": "0.25", "seed": 9}})";
  const JsonValue result = expect_ok(server.handle(request));

  const io::SystemSpec spec = io::parse_system_file(path);
  const auto system = hardening::apply_hardening(
      spec.apps, spec.candidate->plan, spec.candidate->base_mapping,
      spec.arch.processor_count());
  const auto priorities = sched::assign_priorities(system.apps);
  sim::MonteCarloOptions options;
  options.profiles = 60;
  options.fault_probability = 0.25;
  options.seed = 9;
  options.threads = 2;
  const auto reference = sim::monte_carlo_wcrt(
      spec.arch, system, spec.candidate->drop, priorities, options);
  std::ostringstream expected;
  serve::write_simulate_report(expected, system, reference, 60, "0.25");

  EXPECT_EQ(result.str_or("output", ""), expected.str());
  EXPECT_EQ(result.u64_or("deadline_miss_profiles", ~0ULL),
            reference.deadline_miss_profiles);

  // The resident PreparedSim must not drift: same request, same bytes.
  const JsonValue again = expect_ok(server.handle(request));
  EXPECT_EQ(again.str_or("output", ""), expected.str());
}

TEST(Server, EvaluateHitsTheResidentCacheOnRepeat) {
  const std::string path = write_demo_system("evaluate");
  Server server(demo_options(path));
  const JsonValue first =
      expect_ok(server.handle(R"({"id": 1, "method": "evaluate"})"));
  EXPECT_FALSE(first.bool_or("cache_hit", true));
  const JsonValue second =
      expect_ok(server.handle(R"({"id": 2, "method": "evaluate"})"));
  EXPECT_TRUE(second.bool_or("cache_hit", false));
  EXPECT_EQ(first.num_or("power", -1.0), second.num_or("power", -2.0));
  EXPECT_EQ(first.get("graph_wcrt")->array.size(),
            second.get("graph_wcrt")->array.size());
}

TEST(Server, PersistentStoreWarmsAFreshServer) {
  const std::string path = write_demo_system("store");
  const std::string cache_dir = ::testing::TempDir() + "ftmc_serve_store";
  // A previous run may have left a populated store here; start cold.
  const std::string shard = core::store_directory(
      cache_dir, util::fnv1a_bytes(util::read_file(path)));
  std::remove((shard + "/evals.log").c_str());
  std::remove((shard + "/evals.idx").c_str());
  {
    ServeOptions options = demo_options(path);
    options.cache_dir = cache_dir;
    options.enable_cache = false;  // isolate the L2
    Server server(std::move(options));
    const JsonValue first =
        expect_ok(server.handle(R"({"id": 1, "method": "evaluate"})"));
    EXPECT_FALSE(first.bool_or("cache_hit", true));
    server.flush();
  }
  ServeOptions options = demo_options(path);
  options.cache_dir = cache_dir;
  options.enable_cache = false;
  Server server(std::move(options));
  const JsonValue warmed =
      expect_ok(server.handle(R"({"id": 2, "method": "evaluate"})"));
  EXPECT_TRUE(warmed.bool_or("cache_hit", false));
}

TEST(Server, ErrorPathsFailTheRequestNotTheServer) {
  const std::string path = write_demo_system("errors");
  Server server(demo_options(path));
  EXPECT_NE(expect_error(server.handle("not json")).find("JSON parse"),
            std::string::npos);
  EXPECT_NE(expect_error(server.handle("[1,2]"))
                .find("must be a JSON object"),
            std::string::npos);
  EXPECT_NE(expect_error(server.handle(R"({"id": 1})")).find("method"),
            std::string::npos);
  EXPECT_NE(expect_error(server.handle(R"({"method": "frobnicate"})"))
                .find("unknown method"),
            std::string::npos);
  EXPECT_NE(expect_error(
                server.handle(R"({"method": "analyze", "system": "nope"})"))
                .find("unknown system"),
            std::string::npos);
  EXPECT_NE(
      expect_error(server.handle(
                       R"({"method": "simulate",)"
                       R"( "params": {"fault_prob": 0.3}})"))
          .find("fault_prob"),
      std::string::npos);
  // The server still answers after five failed requests.
  EXPECT_TRUE(expect_ok(server.handle(R"({"method": "ping"})"))
                  .bool_or("pong", false));
}

TEST(Server, StatsAndShutdown) {
  const std::string path = write_demo_system("stats");
  Server server(demo_options(path));
  (void)server.handle(R"({"method": "ping"})");
  const JsonValue stats =
      expect_ok(server.handle(R"({"method": "stats"})"));
  EXPECT_GE(stats.u64_or("requests", 0), 2u);
  ASSERT_EQ(stats.get("systems")->array.size(), 1u);
  EXPECT_EQ(stats.get("systems")->array[0].str_or("system", ""), path);

  EXPECT_FALSE(server.stopping());
  const JsonValue shutdown =
      expect_ok(server.handle(R"({"method": "shutdown"})"));
  EXPECT_TRUE(shutdown.bool_or("stopping", false));
  EXPECT_TRUE(server.stopping());
}

TEST(Server, ServeFdDrainsAPrebufferedStream) {
  const std::string path = write_demo_system("fd");
  Server server(demo_options(path));

  int in[2], out[2];
  ASSERT_EQ(::pipe(in), 0);
  ASSERT_EQ(::pipe(out), 0);
  serve::write_frame(in[1], R"({"id": 1, "method": "ping"})");
  serve::write_frame(in[1], R"({"id": 2, "method": "systems"})");
  ::close(in[1]);  // EOF after two requests

  EXPECT_EQ(server.serve_fd(in[0], out[1]), 0);
  ::close(in[0]);
  ::close(out[1]);

  FrameReader reader(out[0]);
  std::string payload;
  ASSERT_TRUE(reader.read(payload));
  EXPECT_TRUE(expect_ok(payload).bool_or("pong", false));
  ASSERT_TRUE(reader.read(payload));
  EXPECT_EQ(expect_ok(payload).get("systems")->array.size(), 1u);
  EXPECT_FALSE(reader.read(payload));
  ::close(out[0]);
}

TEST(Server, RejectsDuplicateSystems) {
  const std::string path = write_demo_system("dup");
  ServeOptions options;
  options.system_paths = {path, path};
  EXPECT_THROW(Server server(std::move(options)), std::runtime_error);
}

}  // namespace
