// Differential suite for the prepared simulation kernel: PreparedSim::run
// must be bit-identical to the reference implementation (the original
// monolithic Simulator::run, preserved in ftmc/sim/reference_sim.hpp) for
// every system, option combination, and fault realization — and stay so
// across scratch reuse and concurrent runs sharing one PreparedSim.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/core/mc_analysis.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "ftmc/sim/prepared_sim.hpp"
#include "ftmc/sim/reference_sim.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;

struct Configured {
  model::Architecture arch;
  hardening::HardenedSystem system;
  core::DropSet drop;
  std::vector<std::uint32_t> priorities;
};

/// Random synthetic system + random decoded candidate, as in
/// test_sim_properties.cpp.  Synthetic channels carry bytes, so remote
/// edges produce bus message nodes under bus_contention.
Configured random_configured(std::uint64_t seed) {
  benchmarks::SynthParams params;
  params.seed = seed * 77 + 5;
  params.graph_count = 3;
  params.min_tasks = 3;
  params.max_tasks = 6;
  auto apps = benchmarks::synthetic_applications(params);
  auto arch = fixtures::test_arch(3);
  util::Rng rng(seed);
  const dse::Decoder decoder(arch, apps);
  dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
  const core::Candidate candidate = decoder.decode(chromosome, rng);
  auto system = hardening::apply_hardening(apps, candidate.plan,
                                           candidate.base_mapping, 3);
  auto priorities = sched::assign_priorities(system.apps);
  return Configured{std::move(arch), std::move(system), candidate.drop,
                    std::move(priorities)};
}

#define EXPECT_JOBS_EQ(a, b)                          \
  do {                                                \
    ASSERT_EQ((a).size(), (b).size());                \
    for (std::size_t i = 0; i < (a).size(); ++i) {    \
      EXPECT_EQ((a)[i].flat_task, (b)[i].flat_task);  \
      EXPECT_EQ((a)[i].instance, (b)[i].instance);    \
      EXPECT_EQ((a)[i].release_time, (b)[i].release_time); \
      EXPECT_EQ((a)[i].ready_time, (b)[i].ready_time); \
      EXPECT_EQ((a)[i].start_time, (b)[i].start_time); \
      EXPECT_EQ((a)[i].finish_time, (b)[i].finish_time); \
      EXPECT_EQ((a)[i].attempts, (b)[i].attempts);    \
      EXPECT_EQ((a)[i].result_faulty, (b)[i].result_faulty); \
      EXPECT_EQ((a)[i].state, (b)[i].state) << "job " << i; \
    }                                                 \
  } while (0)

/// Full bitwise comparison of two results at the given trace level.  The
/// reference always materializes everything; the prepared side must match
/// exactly what its level promises and leave the rest empty.
void expect_level_identical(const sim::SimResult& reference,
                            const sim::SimResult& prepared,
                            sim::TraceLevel level) {
  // Aggregates exist at every level.
  EXPECT_EQ(reference.graph_response, prepared.graph_response);
  EXPECT_EQ(reference.critical_entry, prepared.critical_entry);
  EXPECT_EQ(reference.deadline_miss, prepared.deadline_miss);
  EXPECT_EQ(reference.unsafe_result, prepared.unsafe_result);
  EXPECT_EQ(reference.events, prepared.events);

  if (level == sim::TraceLevel::kResponses) {
    EXPECT_TRUE(prepared.jobs.empty());
    EXPECT_TRUE(prepared.responses.empty());
    EXPECT_TRUE(prepared.segments.empty());
    return;
  }

  EXPECT_JOBS_EQ(reference.jobs, prepared.jobs);
  ASSERT_EQ(reference.responses.size(), prepared.responses.size());
  for (std::size_t i = 0; i < reference.responses.size(); ++i) {
    EXPECT_EQ(reference.responses[i].graph, prepared.responses[i].graph);
    EXPECT_EQ(reference.responses[i].instance, prepared.responses[i].instance);
    EXPECT_EQ(reference.responses[i].release_time,
              prepared.responses[i].release_time);
    EXPECT_EQ(reference.responses[i].response, prepared.responses[i].response);
    EXPECT_EQ(reference.responses[i].deadline_met,
              prepared.responses[i].deadline_met);
  }

  if (level == sim::TraceLevel::kJobs) {
    EXPECT_TRUE(prepared.segments.empty());
    return;
  }

  ASSERT_EQ(reference.segments.size(), prepared.segments.size());
  for (std::size_t i = 0; i < reference.segments.size(); ++i) {
    EXPECT_EQ(reference.segments[i].pe, prepared.segments[i].pe);
    EXPECT_EQ(reference.segments[i].job, prepared.segments[i].job);
    EXPECT_EQ(reference.segments[i].from, prepared.segments[i].from);
    EXPECT_EQ(reference.segments[i].to, prepared.segments[i].to) << "seg " << i;
  }
}

class SimKernelDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SimKernelDifferential, MatchesReferenceAcrossOptionsAndLevels) {
  const std::uint64_t seed = GetParam();
  const Configured config = random_configured(seed);
  for (const bool bus : {false, true}) {
    for (const bool critical : {false, true}) {
      sim::SimOptions legacy_options;
      legacy_options.hyperperiods = 2;
      legacy_options.bus_contention = bus;
      legacy_options.start_in_critical_state = critical;

      util::Rng ref_rng(seed ^ 0xABCD);
      sim::RandomFaults ref_faults(ref_rng.split(), 0.4);
      sim::UniformExecution ref_durations(ref_rng.split());
      const auto reference = sim::reference::run(
          config.arch, config.system, config.drop, config.priorities,
          ref_faults, ref_durations, legacy_options);

      const sim::PreparedSim prepared(
          config.arch, config.system, config.drop, config.priorities,
          sim::PrepareOptions{legacy_options.hyperperiods, bus});
      sim::PreparedSim::Scratch scratch;
      for (const sim::TraceLevel level :
           {sim::TraceLevel::kResponses, sim::TraceLevel::kJobs,
            sim::TraceLevel::kFull}) {
        // Same scratch reused across levels: state must fully reset.
        util::Rng rng(seed ^ 0xABCD);
        sim::RandomFaults faults(rng.split(), 0.4);
        sim::UniformExecution durations(rng.split());
        sim::RunOptions run_options;
        run_options.start_in_critical_state = critical;
        run_options.trace = level;
        const sim::SimResult& result =
            prepared.run(faults, durations, run_options, scratch);
        expect_level_identical(reference, result, level);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimKernelDifferential,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(SimKernel, LegacyAdapterMatchesReferenceBitwise) {
  const Configured config = random_configured(99);
  const sim::Simulator simulator(config.arch, config.system, config.drop,
                                 config.priorities);
  sim::SimOptions options;
  options.hyperperiods = 2;
  util::Rng rng_a(4242), rng_b(4242);
  sim::RandomFaults faults_a(rng_a.split(), 0.5);
  sim::UniformExecution durations_a(rng_a.split());
  sim::RandomFaults faults_b(rng_b.split(), 0.5);
  sim::UniformExecution durations_b(rng_b.split());
  const auto via_adapter = simulator.run(faults_a, durations_a, options);
  const auto reference =
      sim::reference::run(config.arch, config.system, config.drop,
                          config.priorities, faults_b, durations_b, options);
  expect_level_identical(reference, via_adapter, sim::TraceLevel::kFull);
}

TEST(SimKernel, ScratchReuseAcrossRunsAndProblems) {
  sim::PreparedSim::Scratch scratch;
  // Run several different problems (different sizes) through ONE scratch;
  // each must still match a fresh-scratch run bit-for-bit.
  for (const std::uint64_t seed : {5u, 6u, 7u}) {
    const Configured config = random_configured(seed);
    const sim::PreparedSim prepared(config.arch, config.system, config.drop,
                                    config.priorities);
    for (int repeat = 0; repeat < 3; ++repeat) {
      util::Rng rng(seed * 31 + static_cast<std::uint64_t>(repeat));
      sim::RandomFaults faults(rng.split(), 0.4);
      sim::UniformExecution durations(rng.split());
      sim::RunOptions options;
      const sim::SimResult reused =
          prepared.run(faults, durations, options, scratch);

      util::Rng rng2(seed * 31 + static_cast<std::uint64_t>(repeat));
      sim::RandomFaults faults2(rng2.split(), 0.4);
      sim::UniformExecution durations2(rng2.split());
      sim::PreparedSim::Scratch fresh;
      const sim::SimResult& clean =
          prepared.run(faults2, durations2, options, fresh);
      expect_level_identical(clean, reused, sim::TraceLevel::kFull);
    }
  }
}

TEST(SimKernel, SharedPreparedSimSupportsConcurrentRuns) {
  const Configured config = random_configured(12);
  const sim::PreparedSim prepared(config.arch, config.system, config.drop,
                                  config.priorities);
  // Sequential truth for four distinct seeds.
  std::vector<sim::SimResult> expected;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    util::Rng rng(1000 + seed);
    sim::RandomFaults faults(rng.split(), 0.5);
    sim::UniformExecution durations(rng.split());
    sim::PreparedSim::Scratch scratch;
    expected.push_back(
        prepared.run(faults, durations, sim::RunOptions{}, scratch));
  }
  // The same four runs concurrently on the shared PreparedSim.
  std::vector<std::future<sim::SimResult>> futures;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    futures.push_back(std::async(std::launch::async, [&prepared, seed] {
      util::Rng rng(1000 + seed);
      sim::RandomFaults faults(rng.split(), 0.5);
      sim::UniformExecution durations(rng.split());
      sim::PreparedSim::Scratch scratch;
      return prepared.run(faults, durations, sim::RunOptions{}, scratch);
    }));
  }
  for (std::uint64_t seed = 0; seed < 4; ++seed)
    expect_level_identical(expected[seed], futures[seed].get(),
                           sim::TraceLevel::kFull);
}

// Algorithm 1's bound must dominate every response the prepared kernel
// observes (the safety relation of Section 5.1, now through the new path).
TEST(SimKernel, Algorithm1BoundsPreparedKernelResponses) {
  for (const std::uint64_t seed : {3u, 8u, 15u}) {
    const Configured config = random_configured(seed);
    const sched::HolisticAnalysis backend;
    const core::McAnalysis analysis(backend);
    const auto verdict =
        analysis.analyze(config.arch, config.system, config.drop,
                         core::McAnalysis::Mode::kProposed);

    sim::MonteCarloOptions options;
    options.profiles = 200;
    options.seed = seed;
    options.fault_probability = 0.5;
    options.threads = 2;
    const auto observed = sim::monte_carlo_wcrt(
        config.arch, config.system, config.drop, config.priorities, options);
    for (std::uint32_t g = 0; g < config.system.apps.graph_count(); ++g) {
      if (config.drop[g] || observed.worst_response[g] < 0) continue;
      EXPECT_GE(verdict.graph_wcrt(config.system.apps, model::GraphId{g}),
                observed.worst_response[g])
          << "seed " << seed << " graph " << g;
    }
  }
}

void expect_mc_identical(const sim::MonteCarloResult& a,
                         const sim::MonteCarloResult& b) {
  EXPECT_EQ(a.worst_response, b.worst_response);
  EXPECT_EQ(a.deadline_miss_profiles, b.deadline_miss_profiles);
  EXPECT_EQ(a.profiles, b.profiles);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.distribution.size(), b.distribution.size());
  for (std::size_t g = 0; g < a.distribution.size(); ++g) {
    const auto& da = a.distribution[g];
    const auto& db = b.distribution[g];
    EXPECT_EQ(da.observations, db.observations);
    EXPECT_EQ(da.dropped, db.dropped);
    EXPECT_EQ(da.deadline_misses, db.deadline_misses);
    EXPECT_EQ(da.min, db.min);
    EXPECT_EQ(da.max, db.max);
    EXPECT_EQ(da.p95, db.p95);
    EXPECT_EQ(da.p99, db.p99);
    // Bitwise, not approximate: the mean accumulates over the sorted sample
    // set, so thread scheduling must not perturb a single bit.
    const double mean_a = da.mean;
    const double mean_b = db.mean;
    std::uint64_t bits_a = 0, bits_b = 0;
    std::memcpy(&bits_a, &mean_a, sizeof bits_a);
    std::memcpy(&bits_b, &mean_b, sizeof bits_b);
    EXPECT_EQ(bits_a, bits_b) << "graph " << g << " mean drifted";
  }
}

TEST(SimKernel, MonteCarloBitIdenticalAcrossThreadCounts) {
  const Configured config = random_configured(21);
  sim::MonteCarloOptions options;
  options.profiles = 257;  // deliberately not a multiple of any worker count
  options.seed = 77;
  options.fault_probability = 0.4;

  options.threads = 1;
  const auto one = sim::monte_carlo_wcrt(config.arch, config.system,
                                         config.drop, config.priorities,
                                         options);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    options.threads = threads;
    // Repeat each configuration: dynamic chunking makes the work split
    // nondeterministic, the result must not be.
    for (int repeat = 0; repeat < 3; ++repeat) {
      const auto again = sim::monte_carlo_wcrt(
          config.arch, config.system, config.drop, config.priorities, options);
      expect_mc_identical(one, again);
    }
  }
}

TEST(SimKernel, EventBudgetErrorNamesTheProfile) {
  const Configured config = random_configured(2);
  sim::MonteCarloOptions options;
  options.profiles = 8;
  options.seed = 5;
  options.threads = 1;
  options.max_events = 3;  // trips immediately, on profile 0
  try {
    sim::monte_carlo_wcrt(config.arch, config.system, config.drop,
                          config.priorities, options);
    FAIL() << "expected the event budget to trip";
  } catch (const std::runtime_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("monte_carlo_wcrt: profile 0 of 8"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("seed 5"), std::string::npos) << message;
    EXPECT_NE(message.find("event budget"), std::string::npos) << message;
  }
}

TEST(SimKernel, RunThrowsWhenEventBudgetExceeded) {
  const Configured config = random_configured(2);
  const sim::PreparedSim prepared(config.arch, config.system, config.drop,
                                  config.priorities);
  sim::NoFaults faults;
  sim::WcetExecution durations;
  sim::RunOptions options;
  options.max_events = 1;
  sim::PreparedSim::Scratch scratch;
  EXPECT_THROW(prepared.run(faults, durations, options, scratch),
               std::runtime_error);
  // The scratch remains usable for a normal run afterwards.
  options.max_events = 50'000'000;
  const sim::SimResult& ok = prepared.run(faults, durations, options, scratch);
  EXPECT_FALSE(ok.graph_response.empty());
}

TEST(SimKernel, TraceLevelNamesRoundTrip) {
  EXPECT_STREQ(to_string(sim::TraceLevel::kResponses), "responses");
  EXPECT_STREQ(to_string(sim::TraceLevel::kJobs), "jobs");
  EXPECT_STREQ(to_string(sim::TraceLevel::kFull), "full");
}

}  // namespace
