// Property suite over the discrete-event simulator: structural trace
// invariants that must hold for ANY system, candidate, and fault profile.
#include <gtest/gtest.h>

#include <map>

#include "ftmc/benchmarks/synth.hpp"
#include "ftmc/dse/decoder.hpp"
#include "ftmc/sched/priority.hpp"
#include "ftmc/sim/simulator.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;

struct Configured {
  model::Architecture arch;
  hardening::HardenedSystem system;
  core::DropSet drop;
  std::vector<std::uint32_t> priorities;
};

Configured random_configured(std::uint64_t seed) {
  benchmarks::SynthParams params;
  params.seed = seed * 77 + 5;
  params.graph_count = 3;
  params.min_tasks = 3;
  params.max_tasks = 6;
  auto apps = benchmarks::synthetic_applications(params);
  auto arch = fixtures::test_arch(3);
  util::Rng rng(seed);
  const dse::Decoder decoder(arch, apps);
  dse::Chromosome chromosome = dse::random_chromosome(decoder.shape(), rng);
  const core::Candidate candidate = decoder.decode(chromosome, rng);
  auto system = hardening::apply_hardening(apps, candidate.plan,
                                           candidate.base_mapping, 3);
  auto priorities = sched::assign_priorities(system.apps);
  return Configured{std::move(arch), std::move(system), candidate.drop,
                    std::move(priorities)};
}

sim::SimResult run(const Configured& config, std::uint64_t seed,
                   std::size_t hyperperiods = 1) {
  const sim::Simulator simulator(config.arch, config.system, config.drop,
                                 config.priorities);
  util::Rng rng(seed);
  sim::RandomFaults faults(rng.split(), 0.4);
  sim::UniformExecution durations(rng.split());
  sim::SimOptions options;
  options.hyperperiods = hyperperiods;
  return simulator.run(faults, durations, options);
}

class SimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimProperty, SegmentsNeverOverlapOnAnyPe) {
  const Configured config = random_configured(GetParam());
  const auto trace = run(config, GetParam() ^ 0x1234);
  std::map<std::uint32_t, std::vector<std::pair<model::Time, model::Time>>>
      by_pe;
  for (const auto& segment : trace.segments) {
    EXPECT_LT(segment.from, segment.to);
    by_pe[segment.pe.value].push_back({segment.from, segment.to});
  }
  for (auto& [pe, segments] : by_pe) {
    std::sort(segments.begin(), segments.end());
    for (std::size_t s = 1; s < segments.size(); ++s)
      EXPECT_LE(segments[s - 1].second, segments[s].first) << "pe " << pe;
  }
}

TEST_P(SimProperty, PrecedenceRespected) {
  const Configured config = random_configured(GetParam());
  const auto trace = run(config, GetParam() ^ 0x9999);
  const auto& apps = config.system.apps;
  // Index finished jobs by (flat, instance).
  std::map<std::pair<std::size_t, std::size_t>, const sim::JobRecord*> jobs;
  for (const auto& job : trace.jobs)
    jobs[{job.flat_task, job.instance}] = &job;
  for (std::uint32_t g = 0; g < apps.graph_count(); ++g) {
    const auto& graph = apps.graph(model::GraphId{g});
    for (const auto& channel : graph.channels()) {
      const std::size_t src = apps.flat_index({g, channel.src});
      const std::size_t dst = apps.flat_index({g, channel.dst});
      for (const auto& [key, job] : jobs) {
        if (key.first != dst) continue;
        if (job->state != sim::JobState::kFinished &&
            job->state != sim::JobState::kSkipped)
          continue;
        const auto* producer = jobs.at({src, key.second});
        // A consumer can only start after its producer finished.
        if (job->start_time >= 0 && producer->finish_time >= 0) {
          EXPECT_GE(job->start_time, producer->finish_time)
              << apps.task(apps.task_ref(src)).name << " -> "
              << apps.task(apps.task_ref(dst)).name;
        }
      }
    }
  }
}

TEST_P(SimProperty, CancelledJobsNeverExecute) {
  const Configured config = random_configured(GetParam());
  const auto trace = run(config, GetParam() ^ 0x4321);
  for (const auto& segment : trace.segments) {
    const auto& job = trace.jobs[segment.job];
    EXPECT_NE(job.state, sim::JobState::kCancelled);
    EXPECT_NE(job.state, sim::JobState::kSkipped);
  }
  for (const auto& job : trace.jobs) {
    if (job.state == sim::JobState::kCancelled) {
      EXPECT_LT(job.start_time, 0);
      // Only droppable applications may be cancelled.
      EXPECT_TRUE(config.system.apps
                      .graph(config.system.apps.task_ref(job.flat_task)
                                 .graph_id())
                      .droppable());
    }
  }
}

TEST_P(SimProperty, CancellationImpliesCriticalEntry) {
  const Configured config = random_configured(GetParam());
  const auto trace = run(config, GetParam() ^ 0x7777);
  bool any_cancelled = false;
  for (const auto& job : trace.jobs)
    any_cancelled |= job.state == sim::JobState::kCancelled;
  bool any_entry = false;
  for (const model::Time entry : trace.critical_entry)
    any_entry |= entry >= 0;
  if (any_cancelled) {
    EXPECT_TRUE(any_entry);
  }
}

TEST_P(SimProperty, DeterministicForFixedSeeds) {
  const Configured config = random_configured(GetParam());
  const auto a = run(config, 555);
  const auto b = run(config, 555);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time);
    EXPECT_EQ(a.jobs[i].attempts, b.jobs[i].attempts);
    EXPECT_EQ(a.jobs[i].state, b.jobs[i].state);
  }
  EXPECT_EQ(a.graph_response, b.graph_response);
}

TEST_P(SimProperty, BusyTimeMatchesAttemptCountBounds) {
  const Configured config = random_configured(GetParam());
  const auto trace = run(config, GetParam() ^ 0xbeef);
  std::vector<model::Time> busy(trace.jobs.size(), 0);
  for (const auto& segment : trace.segments)
    busy[segment.job] += segment.to - segment.from;
  for (std::size_t j = 0; j < trace.jobs.size(); ++j) {
    const auto& job = trace.jobs[j];
    if (job.state != sim::JobState::kFinished) continue;
    const auto ref = config.system.apps.task_ref(job.flat_task);
    const auto& task = config.system.apps.task(ref);
    const auto& info = config.system.info[config.system.apps.flat_index(ref)];
    const auto& pe = config.arch.processor(
        config.system.mapping.processor_of_flat(job.flat_task));
    model::Time per_attempt_max = task.wcet;
    if (info.pays_detection) per_attempt_max += task.detection_overhead;
    per_attempt_max = hardening::scaled_time(pe, per_attempt_max);
    EXPECT_LE(busy[j], per_attempt_max * job.attempts) << "job " << j;
    EXPECT_GE(job.attempts, 1);
    EXPECT_LE(job.attempts, info.reexecutions + 1);
  }
}

TEST_P(SimProperty, MultiHyperperiodReleasesAllInstances) {
  const Configured config = random_configured(GetParam());
  const auto trace = run(config, GetParam(), /*hyperperiods=*/2);
  const auto& apps = config.system.apps;
  const model::Time hyper = apps.hyperperiod();
  std::map<std::size_t, std::size_t> per_task;
  for (const auto& job : trace.jobs) ++per_task[job.flat_task];
  for (std::size_t i = 0; i < apps.task_count(); ++i) {
    const auto period = apps.graph(apps.task_ref(i).graph_id()).period();
    EXPECT_EQ(per_task[i], static_cast<std::size_t>(2 * hyper / period));
  }
}

TEST_P(SimProperty, ResponsesConsistentWithJobRecords) {
  const Configured config = random_configured(GetParam());
  const auto trace = run(config, GetParam() ^ 0xfeed);
  for (const auto& response : trace.responses) {
    if (response.response < 0) continue;
    EXPECT_GE(response.response, 0);
    const auto& graph = config.system.apps.graph(response.graph);
    EXPECT_EQ(response.deadline_met,
              response.response <= graph.deadline());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

// Execution-time model contracts.
TEST(ExecModels, UniformStaysWithinBounds) {
  util::Rng rng(3);
  sim::UniformExecution model(rng);
  for (int i = 0; i < 2000; ++i) {
    const auto draw = model.attempt_duration({0, 0, 1}, 10, 50);
    EXPECT_GE(draw, 10);
    EXPECT_LE(draw, 50);
  }
  EXPECT_EQ(model.attempt_duration({0, 0, 1}, 7, 7), 7);
}

TEST(ExecModels, WcetAndBcetAreExtremes) {
  sim::WcetExecution wcet;
  sim::BcetExecution bcet;
  EXPECT_EQ(wcet.attempt_duration({0, 0, 1}, 10, 50), 50);
  EXPECT_EQ(bcet.attempt_duration({0, 0, 1}, 10, 50), 10);
}

TEST(FaultModels, PlannedFaultsExactlyMatchKeys) {
  sim::PlannedFaults faults;
  faults.add({3, 1, 2});
  EXPECT_TRUE(faults.attempt_faults({3, 1, 2}));
  EXPECT_FALSE(faults.attempt_faults({3, 1, 1}));
  EXPECT_FALSE(faults.attempt_faults({3, 0, 2}));
  EXPECT_FALSE(faults.attempt_faults({2, 1, 2}));
}

TEST(FaultModels, RandomFaultsRateIsRoughlyP) {
  util::Rng rng(5);
  sim::RandomFaults faults(rng, 0.25);
  int hits = 0;
  for (std::size_t i = 0; i < 40'000; ++i)
    if (faults.attempt_faults({i, 0, 1})) ++hits;
  EXPECT_NEAR(hits / 40'000.0, 0.25, 0.01);
}

}  // namespace
