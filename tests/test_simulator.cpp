#include "ftmc/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <map>

#include "ftmc/sched/priority.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using hardening::HardeningPlan;
using hardening::Technique;
using model::ProcessorId;
using sim::AttemptKey;
using sim::JobState;
using sim::SimOptions;
using sim::SimResult;
using sim::Simulator;

struct Rig {
  model::Architecture arch;
  hardening::HardenedSystem system;
  core::DropSet drop;
  std::vector<std::uint32_t> priorities;

  Rig(model::Architecture a, const model::ApplicationSet& apps,
      const HardeningPlan& plan, core::DropSet d,
      std::vector<ProcessorId> mapping = {})
      : arch(std::move(a)),
        system(hardening::apply_hardening(
            apps, plan,
            mapping.empty()
                ? std::vector<ProcessorId>(apps.task_count(), ProcessorId{0})
                : mapping,
            arch.processor_count())),
        drop(std::move(d)),
        priorities(sched::assign_priorities(system.apps)) {}

  SimResult run(sim::FaultModel& faults, const SimOptions& options = {}) {
    const Simulator simulator(arch, system, drop, priorities);
    sim::WcetExecution wcet;
    return simulator.run(faults, wcet, options);
  }
};

model::ApplicationSet one_chain(std::size_t tasks, model::Time wcet,
                                model::Time period = 1000) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("g", tasks, wcet / 2, wcet, period, false, 1e-6));
  return model::ApplicationSet{std::move(graphs)};
}

TEST(Simulator, FaultFreeChainRunsBackToBack) {
  const auto apps = one_chain(2, 100);
  Rig rig(fixtures::test_arch(1), apps, HardeningPlan(apps.task_count()),
          {false});
  sim::NoFaults no_faults;
  const SimResult result = rig.run(no_faults);
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.jobs[0].start_time, 0);
  EXPECT_EQ(result.jobs[0].finish_time, 100);
  EXPECT_EQ(result.jobs[1].start_time, 100);
  EXPECT_EQ(result.jobs[1].finish_time, 200);
  EXPECT_EQ(result.graph_response[0], 200);
  EXPECT_FALSE(result.deadline_miss);
  EXPECT_FALSE(result.unsafe_result);
  EXPECT_EQ(result.critical_entry[0], -1);
}

TEST(Simulator, BcetExecutionIsFaster) {
  const auto apps = one_chain(2, 100);
  Rig rig(fixtures::test_arch(1), apps, HardeningPlan(apps.task_count()),
          {false});
  const Simulator simulator(rig.arch, rig.system, rig.drop, rig.priorities);
  sim::NoFaults no_faults;
  sim::BcetExecution bcet;
  const SimResult result = simulator.run(no_faults, bcet);
  EXPECT_EQ(result.graph_response[0], 100);  // 2 x bcet 50
}

TEST(Simulator, PreemptionByHigherPriority) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("hp", 1, 50, 50, 500, false, 1e-6));
  graphs.push_back(fixtures::chain_graph("lp", 1, 300, 300, 1000, false, 1e-6));
  const model::ApplicationSet apps{std::move(graphs)};
  Rig rig(fixtures::test_arch(1), apps, HardeningPlan(apps.task_count()),
          {false, false});
  sim::NoFaults no_faults;
  const SimResult result = rig.run(no_faults);
  // hp runs [0,50] and [500,550]; lp runs [50,350].
  EXPECT_EQ(result.jobs[0].finish_time, 50);
  EXPECT_EQ(result.jobs[1].finish_time, 550);
  EXPECT_EQ(result.jobs[2].start_time, 50);
  EXPECT_EQ(result.jobs[2].finish_time, 350);
  EXPECT_EQ(result.graph_response[1], 350);
}

TEST(Simulator, MidExecutionPreemptionSplitsSegments) {
  // lp starts first (hp released later via a long predecessor on another
  // PE is complex; instead give hp a shorter period so it re-releases mid
  // lp execution).
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("hp", 1, 100, 100, 400, false, 1e-6));
  graphs.push_back(fixtures::chain_graph("lp", 1, 600, 600, 800, false, 1e-6));
  const model::ApplicationSet apps{std::move(graphs)};
  Rig rig(fixtures::test_arch(1), apps, HardeningPlan(apps.task_count()),
          {false, false});
  sim::NoFaults no_faults;
  const SimResult result = rig.run(no_faults);
  // hp: [0,100], [400,500]; lp: [100,400] + [500,800].
  EXPECT_EQ(result.jobs.back().finish_time, 800);
  // lp has two execution segments.
  std::size_t lp_segments = 0;
  for (const auto& segment : result.segments)
    if (result.jobs[segment.job].flat_task == 1) ++lp_segments;
  EXPECT_EQ(lp_segments, 2u);
  EXPECT_EQ(result.graph_response[1], 800);
  EXPECT_FALSE(result.deadline_miss);
}

TEST(Simulator, SegmentsNeverOverlapPerPe) {
  const auto apps = fixtures::small_mixed_apps();
  Rig rig(fixtures::test_arch(2), apps, HardeningPlan(apps.task_count()),
          {false, false},
          {ProcessorId{0}, ProcessorId{1}, ProcessorId{0}, ProcessorId{1}});
  sim::NoFaults no_faults;
  const SimResult result = rig.run(no_faults);
  std::map<std::uint32_t, std::vector<std::pair<model::Time, model::Time>>>
      by_pe;
  for (const auto& segment : result.segments)
    by_pe[segment.pe.value].push_back({segment.from, segment.to});
  for (auto& [pe, segments] : by_pe) {
    std::sort(segments.begin(), segments.end());
    for (std::size_t s = 1; s < segments.size(); ++s)
      EXPECT_LE(segments[s - 1].second, segments[s].first);
  }
}

TEST(Simulator, SegmentsSumToExecutionTime) {
  const auto apps = one_chain(3, 80);
  Rig rig(fixtures::test_arch(1), apps, HardeningPlan(apps.task_count()),
          {false});
  sim::NoFaults no_faults;
  const SimResult result = rig.run(no_faults);
  std::vector<model::Time> busy(result.jobs.size(), 0);
  for (const auto& segment : result.segments)
    busy[segment.job] += segment.to - segment.from;
  for (std::size_t j = 0; j < result.jobs.size(); ++j)
    EXPECT_EQ(busy[j], 80) << "job " << j;
}

TEST(Simulator, CommunicationDelayAcrossPes) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("g", 2, 100, 100, 1000, false, 1e-6,
                                         /*bytes=*/64));
  const model::ApplicationSet apps{std::move(graphs)};
  Rig rig(fixtures::test_arch(2, /*bandwidth=*/2.0), apps,
          HardeningPlan(apps.task_count()), {false},
          {ProcessorId{0}, ProcessorId{1}});
  sim::NoFaults no_faults;
  const SimResult result = rig.run(no_faults);
  // Transfer: ceil(64/2) = 32us.
  EXPECT_EQ(result.jobs[1].start_time, 132);
  EXPECT_EQ(result.graph_response[0], 232);
}

TEST(Simulator, ReexecutionDoublesOnFault) {
  const auto apps = one_chain(1, 100);
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 1;
  Rig rig(fixtures::test_arch(1), apps, plan, {false});
  sim::PlannedFaults faults;
  faults.add(AttemptKey{0, 0, 1});
  const SimResult result = rig.run(faults);
  // attempt = wcet + dt = 102; two attempts.
  EXPECT_EQ(result.jobs[0].finish_time, 204);
  EXPECT_EQ(result.jobs[0].attempts, 2);
  EXPECT_FALSE(result.jobs[0].result_faulty);
  EXPECT_FALSE(result.unsafe_result);
  EXPECT_EQ(result.critical_entry[0], 102);
}

TEST(Simulator, ExhaustedReexecutionsAreUnsafe) {
  const auto apps = one_chain(1, 100);
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 1;
  Rig rig(fixtures::test_arch(1), apps, plan, {false});
  sim::AlwaysFaults faults;
  const SimResult result = rig.run(faults);
  EXPECT_EQ(result.jobs[0].attempts, 2);
  EXPECT_TRUE(result.jobs[0].result_faulty);
  EXPECT_TRUE(result.unsafe_result);
}

TEST(Simulator, UnhardenedFaultHasNoTimingEffect) {
  const auto apps = one_chain(1, 100);
  Rig rig(fixtures::test_arch(1), apps, HardeningPlan(apps.task_count()),
          {false});
  sim::AlwaysFaults faults;
  const SimResult result = rig.run(faults);
  EXPECT_EQ(result.jobs[0].finish_time, 100);
  EXPECT_EQ(result.critical_entry[0], -1);  // no hardening -> no transition
  EXPECT_TRUE(result.unsafe_result);
}

struct PassiveRig {
  model::ApplicationSet apps;
  HardeningPlan plan;

  PassiveRig() : apps(one_chain(1, 100)), plan(apps.task_count()) {
    plan[0].technique = Technique::kPassiveReplication;
    plan[0].replica_pes = {ProcessorId{0}, ProcessorId{0}, ProcessorId{0}};
    plan[0].voter_pe = ProcessorId{0};
  }
};

TEST(Simulator, PassiveStandbySkippedWithoutFault) {
  PassiveRig setup;
  Rig rig(fixtures::test_arch(1), setup.apps, setup.plan, {false});
  sim::NoFaults no_faults;
  const SimResult result = rig.run(no_faults);
  // Primaries [0,100], [100,200]; standby skipped at 200; voter (ve=3)
  // [200,203].
  std::size_t skipped = 0;
  for (const auto& job : result.jobs)
    if (job.state == JobState::kSkipped) ++skipped;
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ(result.graph_response[0], 203);
  EXPECT_EQ(result.critical_entry[0], -1);
}

TEST(Simulator, PassiveStandbyActivatedOnPrimaryFault) {
  PassiveRig setup;
  Rig rig(fixtures::test_arch(1), setup.apps, setup.plan, {false});
  sim::PlannedFaults faults;
  faults.add(AttemptKey{0, 0, 1});  // first primary's only attempt
  const SimResult result = rig.run(faults);
  // Standby executes [200,300]; voter [300,303].
  EXPECT_EQ(result.graph_response[0], 303);
  EXPECT_EQ(result.critical_entry[0], 200);
  EXPECT_FALSE(result.unsafe_result);  // standby + healthy primary outvote
  std::size_t skipped = 0;
  for (const auto& job : result.jobs)
    if (job.state == JobState::kSkipped) ++skipped;
  EXPECT_EQ(skipped, 0u);
}

TEST(Simulator, ActiveReplicationMasksFaultWithoutStateChange) {
  const auto apps = one_chain(1, 100);
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kActiveReplication;
  plan[0].replica_pes = {ProcessorId{0}, ProcessorId{0}, ProcessorId{0}};
  plan[0].voter_pe = ProcessorId{0};
  Rig rig(fixtures::test_arch(1), apps, plan, {false});
  sim::PlannedFaults faults;
  faults.add(AttemptKey{0, 0, 1});
  const SimResult result = rig.run(faults);
  EXPECT_EQ(result.critical_entry[0], -1);
  EXPECT_FALSE(result.unsafe_result);  // 2-of-3 majority intact
  EXPECT_EQ(result.graph_response[0], 303);
}

TEST(Simulator, VotedMajorityFaultIsUnsafe) {
  const auto apps = one_chain(1, 100);
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kActiveReplication;
  plan[0].replica_pes = {ProcessorId{0}, ProcessorId{0}, ProcessorId{0}};
  plan[0].voter_pe = ProcessorId{0};
  Rig rig(fixtures::test_arch(1), apps, plan, {false});
  sim::PlannedFaults faults;
  faults.add(AttemptKey{0, 0, 1});
  faults.add(AttemptKey{1, 0, 1});
  const SimResult result = rig.run(faults);
  EXPECT_TRUE(result.unsafe_result);
}

TEST(Simulator, DroppingCancelsUnstartedLowCriticalityJobs) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("crit", 1, 100, 100, 1000, false, 1e-6));
  graphs.push_back(fixtures::chain_graph("low", 1, 50, 50, 1000, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 1;
  Rig rig(fixtures::test_arch(1), apps, plan, {false, true});
  sim::PlannedFaults faults;
  faults.add(AttemptKey{0, 0, 1});
  const SimResult result = rig.run(faults);
  // crit: [0,102] fault -> critical entry at 102 -> low cancelled before it
  // ever starts (it is lower priority than crit) -> crit re-runs [102,204].
  EXPECT_EQ(result.critical_entry[0], 102);
  EXPECT_EQ(result.jobs[0].finish_time, 204);
  EXPECT_EQ(result.jobs[1].state, JobState::kCancelled);
  EXPECT_EQ(result.graph_response[1], -1);
  // The dropped instance is reported as dropped, not as a deadline miss.
  EXPECT_FALSE(result.deadline_miss);
}

TEST(Simulator, StartedDroppableJobRunsToCompletion) {
  // The droppable job starts *before* the fault: it must complete.
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("crit", 2, 100, 100, 1000, false, 1e-6));
  graphs.push_back(fixtures::chain_graph("low", 1, 500, 500, 1000, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  HardeningPlan plan(apps.task_count());
  plan[1].technique = Technique::kReexecution;  // second crit task re-executes
  plan[1].reexecutions = 1;
  // crit on PE 0; low on PE 1 (starts at 0 there).
  Rig rig(fixtures::test_arch(2), apps, plan, {false, true},
          {ProcessorId{0}, ProcessorId{0}, ProcessorId{1}});
  sim::PlannedFaults faults;
  faults.add(AttemptKey{1, 0, 1});
  const SimResult result = rig.run(faults);
  EXPECT_GT(result.critical_entry[0], 0);
  EXPECT_EQ(result.jobs.back().state, JobState::kFinished);
  EXPECT_EQ(result.graph_response[1], 500);
}

TEST(Simulator, CriticalStateResetsAtHyperperiod) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("crit", 1, 100, 100, 1000, false, 1e-6));
  graphs.push_back(fixtures::chain_graph("low", 1, 50, 50, 1000, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  HardeningPlan plan(apps.task_count());
  plan[0].technique = Technique::kReexecution;
  plan[0].reexecutions = 1;
  Rig rig(fixtures::test_arch(1), apps, plan, {false, true});
  sim::PlannedFaults faults;
  faults.add(AttemptKey{0, 0, 1});  // fault only in the first hyperperiod
  SimOptions options;
  options.hyperperiods = 2;
  const SimResult result = rig.run(faults, options);
  ASSERT_EQ(result.critical_entry.size(), 2u);
  EXPECT_EQ(result.critical_entry[0], 102);
  EXPECT_EQ(result.critical_entry[1], -1);
  // low's first instance cancelled, second instance runs.
  EXPECT_EQ(result.jobs[2].state, JobState::kCancelled);
  EXPECT_EQ(result.jobs[3].state, JobState::kFinished);
  EXPECT_EQ(result.jobs[3].finish_time, 1000 + 102 + 50);
}

TEST(Simulator, StartInCriticalStateDropsFromTimeZero) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("crit", 1, 100, 100, 1000, false, 1e-6));
  graphs.push_back(fixtures::chain_graph("low", 1, 50, 50, 1000, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  Rig rig(fixtures::test_arch(1), apps, HardeningPlan(apps.task_count()),
          {false, true});
  sim::NoFaults no_faults;
  SimOptions options;
  options.start_in_critical_state = true;
  const SimResult result = rig.run(no_faults, options);
  EXPECT_EQ(result.jobs[1].state, JobState::kCancelled);
  EXPECT_EQ(result.graph_response[1], -1);
  EXPECT_EQ(result.graph_response[0], 100);
}

TEST(Simulator, DeadlineMissIsDetected) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("g", 3, 400, 400, 1000, false, 1e-6));
  const model::ApplicationSet apps{std::move(graphs)};
  Rig rig(fixtures::test_arch(1), apps, HardeningPlan(apps.task_count()),
          {false});
  sim::NoFaults no_faults;
  const SimResult result = rig.run(no_faults);
  EXPECT_EQ(result.graph_response[0], 1200);
  EXPECT_TRUE(result.deadline_miss);
}

TEST(Simulator, MultipleInstancesWithinHyperperiod) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(fixtures::chain_graph("fast", 1, 30, 30, 250, false, 1e-6));
  graphs.push_back(fixtures::chain_graph("slow", 1, 100, 100, 1000, false, 1e-6));
  const model::ApplicationSet apps{std::move(graphs)};
  Rig rig(fixtures::test_arch(1), apps, HardeningPlan(apps.task_count()),
          {false, false});
  sim::NoFaults no_faults;
  const SimResult result = rig.run(no_faults);
  // fast: 4 instances; slow: 1.
  std::size_t fast_jobs = 0;
  for (const auto& job : result.jobs)
    if (job.flat_task == 0) ++fast_jobs;
  EXPECT_EQ(fast_jobs, 4u);
  EXPECT_EQ(result.responses.size(), 5u);
  EXPECT_EQ(result.graph_response[0], 30);
}

TEST(Simulator, ValidationErrors) {
  const auto apps = one_chain(1, 100);
  const auto system = hardening::apply_hardening(
      apps, HardeningPlan(apps.task_count()),
      {ProcessorId{0}}, 1);
  const auto arch = fixtures::test_arch(1);
  EXPECT_THROW(Simulator(arch, system, {}, sched::assign_priorities(system.apps)),
               std::invalid_argument);
  EXPECT_THROW(Simulator(arch, system, {false}, {}), std::invalid_argument);
}

}  // namespace
