#include "ftmc/dse/spea2.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ftmc/util/rng.hpp"

namespace {

using ftmc::dse::dominates;
using ftmc::dse::ObjectiveVector;
using ftmc::dse::pareto_front;
using ftmc::dse::spea2_fitness;
using ftmc::dse::spea2_select;

TEST(Dominance, Basics) {
  EXPECT_TRUE(dominates({1, 1}, {2, 2}));
  EXPECT_TRUE(dominates({1, 2}, {2, 2}));
  EXPECT_FALSE(dominates({2, 2}, {2, 2}));  // equal: not strict
  EXPECT_FALSE(dominates({1, 3}, {2, 2}));  // incomparable
  EXPECT_FALSE(dominates({2, 2}, {1, 1}));
}

TEST(Dominance, SingleObjective) {
  EXPECT_TRUE(dominates({1}, {2}));
  EXPECT_FALSE(dominates({2}, {1}));
  EXPECT_FALSE(dominates({1}, {1}));
}

TEST(Dominance, DimensionMismatchThrows) {
  EXPECT_THROW(dominates({1, 2}, {1}), std::invalid_argument);
}

TEST(ParetoFront, KnownSet) {
  const std::vector<ObjectiveVector> points{
      {1, 5}, {2, 4}, {3, 3}, {2, 6}, {4, 4}, {5, 1}};
  const auto front = pareto_front(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 2, 5}));
}

TEST(ParetoFront, DuplicatesAreAllNonDominated) {
  const std::vector<ObjectiveVector> points{{1, 1}, {1, 1}, {2, 2}};
  const auto front = pareto_front(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1}));
}

TEST(Spea2Fitness, NonDominatedBelowOne) {
  const std::vector<ObjectiveVector> points{
      {1, 5}, {2, 4}, {3, 3}, {2, 6}, {4, 4}, {5, 1}};
  const auto fitness = spea2_fitness(points);
  const auto front = pareto_front(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const bool on_front =
        std::find(front.begin(), front.end(), i) != front.end();
    if (on_front)
      EXPECT_LT(fitness[i], 1.0) << i;
    else
      EXPECT_GE(fitness[i], 1.0) << i;
  }
}

TEST(Spea2Fitness, MoreDominatedMeansWorse) {
  // c is dominated by both a and b; d only by a.
  const std::vector<ObjectiveVector> points{
      {0, 0},   // a: dominates everyone
      {2, 2},   // b
      {3, 3},   // c: dominated by a and b
      {1, 10},  // d: dominated by a only
  };
  const auto fitness = spea2_fitness(points);
  EXPECT_GT(fitness[2], fitness[3]);
}

TEST(Spea2Select, KeepsTheFrontWhenItFits) {
  const std::vector<ObjectiveVector> points{
      {1, 5}, {2, 4}, {3, 3}, {2, 6}, {4, 4}, {5, 1}};
  auto selected = spea2_select(points, 4);
  std::sort(selected.begin(), selected.end());
  EXPECT_EQ(selected, (std::vector<std::size_t>{0, 1, 2, 5}));
}

TEST(Spea2Select, FillsUpWithBestDominated) {
  const std::vector<ObjectiveVector> points{
      {1, 1}, {2, 2}, {3, 3}, {4, 4}};
  auto selected = spea2_select(points, 3);
  std::sort(selected.begin(), selected.end());
  // Front is {0}; filled with the least-dominated others in order.
  EXPECT_EQ(selected, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Spea2Select, TruncatesCrowdedRegions) {
  // Five non-dominated points, two nearly coincident: truncation should
  // remove one of the crowded pair, keeping the spread.
  const std::vector<ObjectiveVector> points{
      {0.0, 10.0}, {2.0, 6.0}, {2.05, 5.95}, {6.0, 2.0}, {10.0, 0.0}};
  auto selected = spea2_select(points, 4);
  std::sort(selected.begin(), selected.end());
  // Extremes must survive truncation.
  EXPECT_TRUE(std::find(selected.begin(), selected.end(), 0u) !=
              selected.end());
  EXPECT_TRUE(std::find(selected.begin(), selected.end(), 4u) !=
              selected.end());
  // Exactly one of the crowded pair {1, 2} is gone.
  const bool has1 =
      std::find(selected.begin(), selected.end(), 1u) != selected.end();
  const bool has2 =
      std::find(selected.begin(), selected.end(), 2u) != selected.end();
  EXPECT_NE(has1, has2);
}

TEST(Spea2Select, CapacityEdgeCases) {
  const std::vector<ObjectiveVector> points{{1, 1}, {2, 2}};
  EXPECT_TRUE(spea2_select(points, 0).empty());
  EXPECT_TRUE(spea2_select({}, 5).empty());
  EXPECT_EQ(spea2_select(points, 10).size(), 2u);
}

TEST(Spea2Select, SelectionIsSubsetAndRightSize) {
  ftmc::util::Rng rng(99);
  std::vector<ObjectiveVector> points;
  for (int i = 0; i < 40; ++i)
    points.push_back({rng.uniform_real(0, 100), rng.uniform_real(0, 100)});
  const auto selected = spea2_select(points, 15);
  EXPECT_EQ(selected.size(), 15u);
  for (const std::size_t index : selected) EXPECT_LT(index, points.size());
  // No duplicates.
  auto sorted = selected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

class Spea2Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Spea2Property, FrontMembersPreferredOverDominated) {
  ftmc::util::Rng rng(GetParam());
  std::vector<ObjectiveVector> points;
  for (int i = 0; i < 30; ++i)
    points.push_back({rng.uniform_real(0, 10), rng.uniform_real(0, 10)});
  const auto front = pareto_front(points);
  const std::size_t capacity = std::max<std::size_t>(front.size(), 10);
  const auto selected = spea2_select(points, capacity);
  // Every front member must be selected when capacity allows.
  for (const std::size_t index : front)
    EXPECT_TRUE(std::find(selected.begin(), selected.end(), index) !=
                selected.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Spea2Property,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
