#include "ftmc/baseline/static_schedule.hpp"

#include <gtest/gtest.h>

#include <map>

#include "ftmc/sched/priority.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using baseline::contingency_analysis;
using baseline::enumerate_scenarios;
using baseline::FaultScenario;
using baseline::StaticSchedule;
using baseline::synthesize_schedule;

struct Rig {
  model::Architecture arch;
  hardening::HardenedSystem system;
  std::vector<std::uint32_t> priorities;

  Rig(const model::ApplicationSet& apps, const hardening::HardeningPlan& plan,
      std::size_t pes, std::vector<model::ProcessorId> mapping = {})
      : arch(fixtures::test_arch(pes)),
        system(hardening::apply_hardening(
            apps, plan,
            mapping.empty()
                ? std::vector<model::ProcessorId>(apps.task_count(),
                                                  model::ProcessorId{0})
                : mapping,
            pes)),
        priorities(sched::assign_priorities(system.apps)) {}
};

model::ApplicationSet two_graphs() {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("crit", 2, 100, 150, 1000, false, 1e-6));
  graphs.push_back(
      fixtures::chain_graph("aux", 1, 50, 80, 500, true, 1.0));
  return model::ApplicationSet{std::move(graphs)};
}

hardening::HardeningPlan reexec_plan(const model::ApplicationSet& apps,
                                     std::initializer_list<int> ks) {
  hardening::HardeningPlan plan(apps.task_count());
  std::size_t i = 0;
  for (int k : ks) {
    if (k > 0) {
      plan[i].technique = hardening::Technique::kReexecution;
      plan[i].reexecutions = k;
    }
    ++i;
  }
  return plan;
}

TEST(ScenarioEnumeration, CountsFollowTheCombinatorics) {
  const auto apps = two_graphs();
  // crit0 and crit1 re-executable once each: jobs with budget = 2.
  const Rig rig(apps, reexec_plan(apps, {1, 1, 0}), 1);
  EXPECT_EQ(baseline::job_count(rig.system), 4u);  // 1+1 crit, 2 aux

  // max_faults = 1: no-fault + one fault in either job = 3.
  EXPECT_EQ(enumerate_scenarios(rig.system, 1).size(), 3u);
  // max_faults = 2: + both fault = 4.
  EXPECT_EQ(enumerate_scenarios(rig.system, 2).size(), 4u);
  // k = 2 each: per job 0..2 with sum <= 2: 1 + 2 + 3 = 6.
  const Rig deeper(apps, reexec_plan(apps, {2, 2, 0}), 1);
  EXPECT_EQ(enumerate_scenarios(deeper.system, 2).size(), 6u);
}

TEST(ScenarioEnumeration, NoHardeningMeansOneScenario) {
  const auto apps = two_graphs();
  const Rig rig(apps, hardening::HardeningPlan(apps.task_count()), 1);
  const auto scenarios = enumerate_scenarios(rig.system, 3);
  ASSERT_EQ(scenarios.size(), 1u);
  for (int extra : scenarios[0]) EXPECT_EQ(extra, 0);
}

TEST(ScenarioEnumeration, LimitGuardsExplosion) {
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("big", 8, 10, 20, 1000, false, 1e-6));
  const model::ApplicationSet apps{std::move(graphs)};
  hardening::HardeningPlan plan(apps.task_count());
  for (auto& decision : plan) {
    decision.technique = hardening::Technique::kReexecution;
    decision.reexecutions = 2;
  }
  const Rig rig(apps, plan, 1);
  EXPECT_THROW(enumerate_scenarios(rig.system, 8, /*limit=*/100),
               std::length_error);
}

TEST(StaticScheduleTest, FaultFreeScheduleRespectsStructure) {
  const auto apps = two_graphs();
  const Rig rig(apps, reexec_plan(apps, {1, 1, 0}), 1);
  const FaultScenario none(baseline::job_count(rig.system), 0);
  const StaticSchedule schedule =
      synthesize_schedule(rig.arch, rig.system, none, rig.priorities);
  ASSERT_EQ(schedule.entries.size(), 4u);

  // Non-preemptive: entries on the same PE never overlap.
  std::map<std::uint32_t, std::vector<std::pair<model::Time, model::Time>>>
      by_pe;
  for (const auto& entry : schedule.entries) {
    EXPECT_LE(entry.start + 1, entry.finish);
    by_pe[entry.pe.value].push_back({entry.start, entry.finish});
  }
  for (auto& [pe, spans] : by_pe) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t s = 1; s < spans.size(); ++s)
      EXPECT_LE(spans[s - 1].second, spans[s].first);
  }
  // Precedence: crit1 starts after crit0.
  std::map<std::size_t, const baseline::ScheduleEntry*> by_flat_inst;
  for (const auto& entry : schedule.entries)
    if (entry.instance == 0) by_flat_inst[entry.flat_task] = &entry;
  EXPECT_GE(by_flat_inst[1]->start, by_flat_inst[0]->finish);
  // Releases respected: aux instance 1 not before 500.
  for (const auto& entry : schedule.entries)
    if (entry.flat_task == 2 && entry.instance == 1) {
      EXPECT_GE(entry.start, 500);
    }
  EXPECT_TRUE(schedule.deadlines_met);
}

TEST(StaticScheduleTest, FaultsExtendTheScenarioSchedule) {
  const auto apps = two_graphs();
  const Rig rig(apps, reexec_plan(apps, {1, 1, 0}), 1);
  const std::size_t jobs = baseline::job_count(rig.system);
  const FaultScenario none(jobs, 0);
  FaultScenario faulty(jobs, 0);
  faulty[0] = 1;  // crit0 re-executes once
  const auto base =
      synthesize_schedule(rig.arch, rig.system, none, rig.priorities);
  const auto extended =
      synthesize_schedule(rig.arch, rig.system, faulty, rig.priorities);
  EXPECT_GT(extended.makespan, base.makespan);
  // The extension equals the extra attempt (wcet + dt = 152) on this
  // single-PE chain-bound instance.
  EXPECT_EQ(extended.makespan - base.makespan, 152);
}

TEST(StaticScheduleTest, ValidationErrors) {
  const auto apps = two_graphs();
  const Rig rig(apps, reexec_plan(apps, {1, 0, 0}), 1);
  EXPECT_THROW(synthesize_schedule(rig.arch, rig.system, FaultScenario{},
                                   rig.priorities),
               std::invalid_argument);
  const FaultScenario ok(baseline::job_count(rig.system), 0);
  EXPECT_THROW(synthesize_schedule(rig.arch, rig.system, ok,
                                   std::vector<std::uint32_t>{}),
               std::invalid_argument);
}

TEST(Contingency, AggregatesAcrossScenarios) {
  const auto apps = two_graphs();
  const Rig rig(apps, reexec_plan(apps, {1, 1, 0}), 2,
                {model::ProcessorId{0}, model::ProcessorId{0},
                 model::ProcessorId{1}});
  const auto result =
      contingency_analysis(rig.arch, rig.system, 2, rig.priorities);
  EXPECT_EQ(result.schedule_count, 4u);
  EXPECT_EQ(result.table_entries, 4u * baseline::job_count(rig.system));
  EXPECT_GT(result.worst_makespan, 0);
  // Worst makespan dominates the fault-free one.
  const auto base = synthesize_schedule(
      rig.arch, rig.system,
      FaultScenario(baseline::job_count(rig.system), 0), rig.priorities);
  EXPECT_GE(result.worst_makespan, base.makespan);
}

TEST(Contingency, StaticTablesCannotDrop) {
  // A load that only fits when the droppable graph is shed in the critical
  // state: the dynamic analysis accepts it (with dropping), the static
  // contingency tables do not (they must serve everything in all
  // scenarios).
  std::vector<model::TaskGraph> graphs;
  graphs.push_back(
      fixtures::chain_graph("crit", 2, 150, 200, 1000, false, 1e-6));
  graphs.push_back(
      fixtures::chain_graph("load", 2, 150, 150, 1000, true, 1.0));
  const model::ApplicationSet apps{std::move(graphs)};
  hardening::HardeningPlan plan(apps.task_count());
  plan[0].technique = hardening::Technique::kReexecution;
  plan[0].reexecutions = 1;
  plan[1].technique = hardening::Technique::kReexecution;
  plan[1].reexecutions = 1;
  const Rig rig(apps, plan, 1);
  const auto result =
      contingency_analysis(rig.arch, rig.system, 2, rig.priorities);
  EXPECT_FALSE(result.all_deadlines_met);
}

}  // namespace
