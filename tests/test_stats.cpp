#include "ftmc/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using ftmc::util::percentile;
using ftmc::util::RunningStats;

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats stats;
  stats.add(7.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.min(), 7.5);
  EXPECT_EQ(stats.max(), 7.5);
  EXPECT_EQ(stats.mean(), 7.5);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (double sample : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    stats.add(sample);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance: sum (x-5)^2 = 32, / 7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, NegativeValues) {
  RunningStats stats;
  stats.add(-3.0);
  stats.add(3.0);
  EXPECT_EQ(stats.min(), -3.0);
  EXPECT_EQ(stats.max(), 3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.5), 3.0);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  // Sorted: 10, 20, 30, 40.  q=0.25 -> position 0.75 -> 10 + 0.75*10.
  EXPECT_DOUBLE_EQ(percentile({40.0, 10.0, 30.0, 20.0}, 0.25), 17.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.73), 42.0);
}

TEST(Percentile, Validation) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.1), std::invalid_argument);
}

}  // namespace
