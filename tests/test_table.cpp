#include "ftmc/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using ftmc::util::Table;

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::cell(std::int64_t{-12}), "-12");
  EXPECT_EQ(Table::cell(std::size_t{7}), "7");
}

TEST(Table, PrintsTitleHeaderAndRows) {
  Table table("My Table");
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("My Table"), std::string::npos);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  Table table;
  table.set_header({"x", "y"});
  table.add_row({"longer", "1"});
  std::ostringstream out;
  table.print(out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t width = 0;
  bool first = true;
  while (std::getline(lines, line)) {
    if (first) {
      width = line.size();
      first = false;
    } else {
      EXPECT_EQ(line.size(), width) << line;
    }
  }
}

TEST(Table, RaggedRowsArePadded) {
  Table table;
  table.set_header({"a", "b", "c"});
  table.add_row({"1"});
  std::ostringstream out;
  EXPECT_NO_THROW(table.print(out));
}

TEST(Table, CsvBasic) {
  Table table;
  table.set_header({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  Table table;
  table.add_row({"with,comma", "with\"quote", "plain"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "\"with,comma\",\"with\"\"quote\",plain\n");
}

TEST(Table, RowCount) {
  Table table;
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"x"});
  table.add_row({"y"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, EmptyTablePrintsNothing) {
  Table table;
  std::ostringstream out;
  table.print(out);
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
