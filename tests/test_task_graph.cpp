#include "ftmc/model/task_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using ftmc::model::kDroppableReliability;
using ftmc::model::kNonDroppableService;
using ftmc::model::Task;
using ftmc::model::TaskGraph;
using ftmc::model::TaskGraphBuilder;

TaskGraph diamond() {
  TaskGraphBuilder builder("diamond");
  const auto a = builder.add_task("a", 1, 2);
  const auto b = builder.add_task("b", 2, 4);
  const auto c = builder.add_task("c", 3, 6);
  const auto d = builder.add_task("d", 1, 3);
  builder.connect(a, b, 10).connect(a, c, 20).connect(b, d, 30).connect(
      c, d, 40);
  builder.period(100).reliability(0.5);
  return builder.build();
}

TEST(TaskGraph, BasicProperties) {
  const TaskGraph graph = diamond();
  EXPECT_EQ(graph.name(), "diamond");
  EXPECT_EQ(graph.task_count(), 4u);
  EXPECT_EQ(graph.channels().size(), 4u);
  EXPECT_EQ(graph.period(), 100);
  EXPECT_EQ(graph.deadline(), 100);
  EXPECT_FALSE(graph.droppable());
  EXPECT_DOUBLE_EQ(graph.reliability_constraint(), 0.5);
  EXPECT_EQ(graph.service_value(), kNonDroppableService);
  EXPECT_EQ(graph.total_wcet(), 15);
}

TEST(TaskGraph, SourcesAndSinks) {
  const TaskGraph graph = diamond();
  EXPECT_EQ(graph.sources(), std::vector<std::uint32_t>{0});
  EXPECT_EQ(graph.sinks(), std::vector<std::uint32_t>{3});
}

TEST(TaskGraph, PredecessorsAndSuccessors) {
  const TaskGraph graph = diamond();
  EXPECT_EQ(graph.predecessors(3), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(graph.successors(0), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_TRUE(graph.predecessors(0).empty());
  EXPECT_TRUE(graph.successors(3).empty());
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph graph = diamond();
  const auto& order = graph.topological_order();
  ASSERT_EQ(order.size(), 4u);
  auto position = [&](std::uint32_t v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  for (const auto& channel : graph.channels())
    EXPECT_LT(position(channel.src), position(channel.dst));
}

TEST(TaskGraph, DroppableGraph) {
  TaskGraphBuilder builder("logger");
  builder.add_task("t", 1, 2);
  builder.period(10).droppable(3.5);
  const TaskGraph graph = builder.build();
  EXPECT_TRUE(graph.droppable());
  EXPECT_DOUBLE_EQ(graph.service_value(), 3.5);
  EXPECT_DOUBLE_EQ(graph.reliability_constraint(), kDroppableReliability);
}

TEST(TaskGraph, RejectsCycle) {
  TaskGraphBuilder builder("cycle");
  const auto a = builder.add_task("a", 1, 2);
  const auto b = builder.add_task("b", 1, 2);
  builder.connect(a, b).connect(b, a).period(10).reliability(0.1);
  EXPECT_THROW(builder.build(), std::invalid_argument);
}

TEST(TaskGraph, RejectsSelfLoop) {
  TaskGraphBuilder builder("loop");
  const auto a = builder.add_task("a", 1, 2);
  builder.connect(a, a).period(10).reliability(0.1);
  EXPECT_THROW(builder.build(), std::invalid_argument);
}

TEST(TaskGraph, RejectsChannelOutOfRange) {
  EXPECT_THROW(TaskGraph("g", {Task{"a", 1, 2, 0, 0}},
                         {ftmc::model::Channel{0, 5, 0}}, 10, 0.1,
                         kNonDroppableService),
               std::invalid_argument);
}

TEST(TaskGraph, RejectsEmptyOrUnnamed) {
  EXPECT_THROW(TaskGraph("g", {}, {}, 10, 0.1, kNonDroppableService),
               std::invalid_argument);
  EXPECT_THROW(TaskGraph("", {Task{"a", 1, 2, 0, 0}}, {}, 10, 0.1,
                         kNonDroppableService),
               std::invalid_argument);
  EXPECT_THROW(TaskGraph("g", {Task{"", 1, 2, 0, 0}}, {}, 10, 0.1,
                         kNonDroppableService),
               std::invalid_argument);
}

TEST(TaskGraph, RejectsDuplicateTaskNames) {
  EXPECT_THROW(TaskGraph("g", {Task{"a", 1, 2, 0, 0}, Task{"a", 1, 2, 0, 0}},
                         {}, 10, 0.1, kNonDroppableService),
               std::invalid_argument);
}

TEST(TaskGraph, RejectsBadExecutionTimes) {
  EXPECT_THROW(TaskGraph("g", {Task{"a", 5, 2, 0, 0}}, {}, 10, 0.1,
                         kNonDroppableService),
               std::invalid_argument);
  EXPECT_THROW(TaskGraph("g", {Task{"a", -1, 2, 0, 0}}, {}, 10, 0.1,
                         kNonDroppableService),
               std::invalid_argument);
  EXPECT_THROW(TaskGraph("g", {Task{"a", 1, 2, -1, 0}}, {}, 10, 0.1,
                         kNonDroppableService),
               std::invalid_argument);
  EXPECT_THROW(TaskGraph("g", {Task{"a", 1, 2, 0, -1}}, {}, 10, 0.1,
                         kNonDroppableService),
               std::invalid_argument);
}

TEST(TaskGraph, RejectsBadPeriod) {
  EXPECT_THROW(TaskGraph("g", {Task{"a", 1, 2, 0, 0}}, {}, 0, 0.1,
                         kNonDroppableService),
               std::invalid_argument);
}

TEST(TaskGraph, RejectsBadCriticalityCombos) {
  // Non-droppable with out-of-range f.
  EXPECT_THROW(TaskGraph("g", {Task{"a", 1, 2, 0, 0}}, {}, 10, 1.5,
                         kNonDroppableService),
               std::invalid_argument);
  EXPECT_THROW(TaskGraph("g", {Task{"a", 1, 2, 0, 0}}, {}, 10, 0.0,
                         kNonDroppableService),
               std::invalid_argument);
  // Non-droppable with finite service.
  EXPECT_THROW(TaskGraph("g", {Task{"a", 1, 2, 0, 0}}, {}, 10, 0.1, 3.0),
               std::invalid_argument);
  // Droppable with infinite service.
  EXPECT_THROW(TaskGraph("g", {Task{"a", 1, 2, 0, 0}}, {}, 10,
                         kDroppableReliability, kNonDroppableService),
               std::invalid_argument);
  // Droppable with negative service.
  EXPECT_THROW(TaskGraph("g", {Task{"a", 1, 2, 0, 0}}, {}, 10,
                         kDroppableReliability, -1.0),
               std::invalid_argument);
}

TEST(TaskGraphBuilder, RequiresCriticality) {
  TaskGraphBuilder builder("g");
  builder.add_task("a", 1, 2);
  builder.period(10);
  EXPECT_THROW(builder.build(), std::logic_error);
}

TEST(TaskGraph, ParallelChainsHaveMultipleSourcesAndSinks) {
  TaskGraphBuilder builder("parallel");
  const auto a = builder.add_task("a", 1, 1);
  const auto b = builder.add_task("b", 1, 1);
  const auto c = builder.add_task("c", 1, 1);
  const auto d = builder.add_task("d", 1, 1);
  builder.connect(a, c).connect(b, d).period(10).reliability(0.1);
  const TaskGraph graph = builder.build();
  EXPECT_EQ(graph.sources().size(), 2u);
  EXPECT_EQ(graph.sinks().size(), 2u);
}

}  // namespace
