#include "ftmc/io/text_format.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "ftmc/benchmarks/cruise.hpp"
#include "ftmc/benchmarks/dream.hpp"
#include "helpers.hpp"

namespace {

using namespace ftmc;
using io::parse_system_string;
using io::ParseError;

const char* kMinimal = R"(
platform {
  bandwidth 2.0
  processor pe0 { static 50 dynamic 150 fault_rate 1e-8 }
  processor pe1 { }
}
application app {
  period 100ms
  reliability 1e-12
  task a { bcet 5ms wcet 10ms ve 2ms dt 1ms }
  task b { wcet 8ms }
  channel a -> b bytes 256
}
)";

TEST(TextFormat, ParsesMinimalSystem) {
  const auto spec = parse_system_string(kMinimal);
  EXPECT_EQ(spec.arch.processor_count(), 2u);
  EXPECT_DOUBLE_EQ(spec.arch.bandwidth(), 2.0);
  const auto& pe0 = spec.arch.processor(model::ProcessorId{0});
  EXPECT_EQ(pe0.name, "pe0");
  EXPECT_DOUBLE_EQ(pe0.static_power, 50.0);
  EXPECT_DOUBLE_EQ(pe0.fault_rate, 1e-8);
  EXPECT_DOUBLE_EQ(pe0.speed_factor, 1.0);  // default
  ASSERT_EQ(spec.apps.graph_count(), 1u);
  const auto& graph = spec.apps.graph(model::GraphId{0});
  EXPECT_EQ(graph.name(), "app");
  EXPECT_EQ(graph.period(), 100 * model::kMillisecond);
  EXPECT_DOUBLE_EQ(graph.reliability_constraint(), 1e-12);
  EXPECT_EQ(graph.task(0).bcet, 5000);
  EXPECT_EQ(graph.task(0).wcet, 10000);
  EXPECT_EQ(graph.task(0).voting_overhead, 2000);
  EXPECT_EQ(graph.task(0).detection_overhead, 1000);
  EXPECT_EQ(graph.task(1).bcet, 0);  // default
  ASSERT_EQ(graph.channels().size(), 1u);
  EXPECT_EQ(graph.channels()[0].size_bytes, 256u);
  EXPECT_FALSE(spec.candidate.has_value());
}

TEST(TextFormat, TimeUnits) {
  const auto spec = parse_system_string(R"(
platform { processor p { } }
application a {
  period 1s
  droppable 1
  task t { bcet 250us wcet 1500 }
}
)");
  const auto& graph = spec.apps.graph(model::GraphId{0});
  EXPECT_EQ(graph.period(), model::kSecond);
  EXPECT_EQ(graph.task(0).bcet, 250);
  EXPECT_EQ(graph.task(0).wcet, 1500);  // bare numbers are microseconds
}

TEST(TextFormat, CommentsAndWhitespaceIgnored) {
  const auto spec = parse_system_string(
      "platform { # trailing\n processor p { } }  # another\n"
      "application a{period 10ms\ndroppable 2\ntask t{wcet 1ms}}");
  EXPECT_EQ(spec.apps.graph_count(), 1u);
  EXPECT_TRUE(spec.apps.graph(model::GraphId{0}).droppable());
}

TEST(TextFormat, ParsesCandidateBlock) {
  const std::string text = std::string(kMinimal) + R"(
candidate {
  allocate pe0 pe1
  map app.a pe1
  map app.b pe0
  harden app.a reexec 2
  harden app.b active pe0 pe1 voter pe0
}
)";
  const auto spec = parse_system_string(text);
  ASSERT_TRUE(spec.candidate.has_value());
  const auto& candidate = *spec.candidate;
  EXPECT_EQ(candidate.allocation, (core::Allocation{true, true}));
  EXPECT_EQ(candidate.base_mapping[0], model::ProcessorId{1});
  EXPECT_EQ(candidate.base_mapping[1], model::ProcessorId{0});
  EXPECT_EQ(candidate.plan[0].technique,
            hardening::Technique::kReexecution);
  EXPECT_EQ(candidate.plan[0].reexecutions, 2);
  EXPECT_EQ(candidate.plan[1].technique,
            hardening::Technique::kActiveReplication);
  ASSERT_EQ(candidate.plan[1].replica_pes.size(), 2u);
  EXPECT_EQ(candidate.plan[1].voter_pe, model::ProcessorId{0});
}

TEST(TextFormat, EmptyAllocateDefaultsToAll) {
  const std::string text = std::string(kMinimal) + "candidate { }\n";
  const auto spec = parse_system_string(text);
  ASSERT_TRUE(spec.candidate.has_value());
  EXPECT_EQ(spec.candidate->allocation, (core::Allocation{true, true}));
}

TEST(TextFormat, DropReferencesGraphs) {
  const std::string text = R"(
platform { processor p { } }
application crit { period 10ms reliability 1e-9 task t { wcet 1ms } }
application aux  { period 10ms droppable 2 task u { wcet 1ms } }
candidate { drop aux }
)";
  const auto spec = parse_system_string(text);
  ASSERT_TRUE(spec.candidate.has_value());
  EXPECT_FALSE(spec.candidate->drop[0]);
  EXPECT_TRUE(spec.candidate->drop[1]);
}

// ---- Error reporting ------------------------------------------------------

TEST(TextFormat, ErrorsCarryLineNumbers) {
  try {
    parse_system_string("platform {\n  bogus 3\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), 2);
    EXPECT_NE(std::string(error.what()).find("bogus"), std::string::npos);
  }
}

TEST(TextFormat, RejectsMalformedInput) {
  EXPECT_THROW(parse_system_string(""), ParseError);
  EXPECT_THROW(parse_system_string("platform { processor p { } }"),
               ParseError);  // no applications
  EXPECT_THROW(parse_system_string(
                   "application a { period 1ms droppable 1 task t { wcet "
                   "1ms } }"),
               ParseError);  // no platform
  // Unknown fields / bad numbers / bad times.
  EXPECT_THROW(parse_system_string(
                   "platform { processor p { wattage 3 } }"),
               ParseError);
  EXPECT_THROW(parse_system_string(
                   "platform { bandwidth fast processor p { } }"),
               ParseError);
  EXPECT_THROW(
      parse_system_string("platform { processor p { } }\n"
                          "application a { period soon droppable 1 task t "
                          "{ wcet 1ms } }"),
      ParseError);
}

TEST(TextFormat, RejectsMissingApplicationAttributes) {
  EXPECT_THROW(parse_system_string(
                   "platform { processor p { } }\n"
                   "application a { droppable 1 task t { wcet 1ms } }"),
               ParseError);  // no period
  EXPECT_THROW(parse_system_string(
                   "platform { processor p { } }\n"
                   "application a { period 1ms task t { wcet 1ms } }"),
               ParseError);  // no criticality
}

TEST(TextFormat, RejectsUnknownReferences) {
  EXPECT_THROW(parse_system_string(
                   "platform { processor p { } }\n"
                   "application a { period 1ms droppable 1 task t { wcet "
                   "1ms } channel t -> u }"),
               ParseError);
  const std::string base =
      "platform { processor p { } }\n"
      "application a { period 1ms droppable 1 task t { wcet 1ms } }\n";
  EXPECT_THROW(parse_system_string(base + "candidate { map a.x p }"),
               ParseError);
  EXPECT_THROW(parse_system_string(base + "candidate { map b.t p }"),
               ParseError);
  EXPECT_THROW(parse_system_string(base + "candidate { map a.t q }"),
               ParseError);
  EXPECT_THROW(parse_system_string(base + "candidate { drop b }"),
               ParseError);
  EXPECT_THROW(parse_system_string(base + "candidate { harden a.t laser 1 }"),
               ParseError);
}

TEST(TextFormat, ModelInvariantsStillChecked) {
  // bcet > wcet is a model error surfaced through the builder.
  EXPECT_THROW(parse_system_string(
                   "platform { processor p { } }\n"
                   "application a { period 1ms droppable 1 task t { bcet "
                   "2ms wcet 1ms } }"),
               std::invalid_argument);
  // Cyclic graph.
  EXPECT_THROW(parse_system_string(
                   "platform { processor p { } }\n"
                   "application a { period 9ms droppable 1 task t { wcet "
                   "1ms } task u { wcet 1ms } channel t -> u channel u -> "
                   "t }"),
               std::invalid_argument);
}

// ---- Round trips ----------------------------------------------------------

TEST(TextFormat, RoundTripPreservesBenchmarks) {
  for (const auto& bench :
       {benchmarks::cruise_benchmark(), benchmarks::dt_med_benchmark()}) {
    const std::string text = io::to_text(bench.arch, bench.apps);
    const auto spec = parse_system_string(text);
    ASSERT_EQ(spec.apps.graph_count(), bench.apps.graph_count());
    ASSERT_EQ(spec.apps.task_count(), bench.apps.task_count());
    EXPECT_EQ(spec.arch.processor_count(), bench.arch.processor_count());
    for (std::size_t i = 0; i < bench.apps.task_count(); ++i) {
      const auto ref = bench.apps.task_ref(i);
      EXPECT_EQ(spec.apps.task(ref).wcet, bench.apps.task(ref).wcet);
      EXPECT_EQ(spec.apps.task(ref).bcet, bench.apps.task(ref).bcet);
      EXPECT_EQ(spec.apps.task(ref).name, bench.apps.task(ref).name);
    }
    for (std::uint32_t g = 0; g < bench.apps.graph_count(); ++g) {
      const model::GraphId id{g};
      EXPECT_EQ(spec.apps.graph(id).period(), bench.apps.graph(id).period());
      EXPECT_EQ(spec.apps.graph(id).channels().size(),
                bench.apps.graph(id).channels().size());
    }
  }
}

TEST(TextFormat, RoundTripPreservesCandidate) {
  const auto cruise = benchmarks::cruise_benchmark();
  const auto configs = benchmarks::cruise_sample_configs(cruise);
  const core::Candidate& original = configs[0].candidate;
  const std::string text = io::to_text(cruise.arch, cruise.apps, &original);
  const auto spec = parse_system_string(text);
  ASSERT_TRUE(spec.candidate.has_value());
  EXPECT_EQ(spec.candidate->allocation, original.allocation);
  EXPECT_EQ(spec.candidate->drop, original.drop);
  EXPECT_EQ(spec.candidate->base_mapping, original.base_mapping);
  ASSERT_EQ(spec.candidate->plan.size(), original.plan.size());
  for (std::size_t i = 0; i < original.plan.size(); ++i)
    EXPECT_EQ(spec.candidate->plan[i], original.plan[i]) << "task " << i;
}

TEST(TextFormat, FormatTime) {
  EXPECT_EQ(io::format_time(0), "0us");
  EXPECT_EQ(io::format_time(250), "250us");
  EXPECT_EQ(io::format_time(1000), "1ms");
  EXPECT_EQ(io::format_time(1500), "1500us");
  EXPECT_EQ(io::format_time(2'000'000), "2s");
  EXPECT_EQ(io::format_time(1'500'000), "1500ms");
}

TEST(TextFormat, FileRoundTrip) {
  const auto apps = fixtures::small_mixed_apps();
  const auto arch = fixtures::test_arch(2);
  const std::string path = ::testing::TempDir() + "ftmc_roundtrip.ftmc";
  {
    std::ofstream out(path);
    io::write_system(out, arch, apps);
  }
  const auto spec = io::parse_system_file(path);
  EXPECT_EQ(spec.apps.task_count(), apps.task_count());
  EXPECT_THROW(io::parse_system_file(path + ".does-not-exist"),
               std::runtime_error);
}

TEST(TextFormat, CandidateMustComeLast) {
  const std::string text =
      "platform { processor p { } }\n"
      "candidate { }\n"
      "application a { period 1ms droppable 1 task t { wcet 1ms } }";
  EXPECT_THROW(parse_system_string(text), ParseError);
}

}  // namespace
