#include "ftmc/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace {

using ftmc::util::ThreadPool;

TEST(ThreadPool, SpawnsRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, ParallelForRethrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 5)
                                     throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForCompletesAllTasksBeforeRethrow) {
  // The submitted lambdas hold the body by reference; parallel_for must not
  // propagate an exception while tasks are still queued or running, or they
  // would outlive the caller's (possibly temporary) function object.
  ThreadPool pool(2);
  std::atomic<int> entered{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   entered.fetch_add(1);
                                   if (i == 0)
                                     throw std::logic_error("first task");
                                 }),
               std::logic_error);
  EXPECT_EQ(entered.load(), 64);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 1000; ++i)
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  for (auto& future : futures) future.get();
  EXPECT_EQ(sum.load(), 500'500);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      (void)pool.submit([&done] { done.fetch_add(1); });
  }
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
