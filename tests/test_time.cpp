#include "ftmc/model/time.hpp"

#include <gtest/gtest.h>

#include <array>

namespace {

using ftmc::model::hyperperiod;
using ftmc::model::Time;

TEST(Time, UnitRelations) {
  EXPECT_EQ(ftmc::model::kMillisecond, 1000);
  EXPECT_EQ(ftmc::model::kSecond, 1'000'000);
}

TEST(Time, ToMilliseconds) {
  EXPECT_DOUBLE_EQ(ftmc::model::to_milliseconds(1'500), 1.5);
  EXPECT_DOUBLE_EQ(ftmc::model::to_milliseconds(0), 0.0);
  EXPECT_DOUBLE_EQ(ftmc::model::to_milliseconds(-2'000), -2.0);
}

TEST(Hyperperiod, SingleValue) {
  const std::array<Time, 1> periods{42};
  EXPECT_EQ(hyperperiod(periods), 42);
}

TEST(Hyperperiod, HarmonicSet) {
  const std::array<Time, 3> periods{500, 1000, 2000};
  EXPECT_EQ(hyperperiod(periods), 2000);
}

TEST(Hyperperiod, CoprimeSet) {
  const std::array<Time, 2> periods{3, 7};
  EXPECT_EQ(hyperperiod(periods), 21);
}

TEST(Hyperperiod, RepeatedValues) {
  const std::array<Time, 3> periods{10, 10, 10};
  EXPECT_EQ(hyperperiod(periods), 10);
}

TEST(Hyperperiod, RejectsEmpty) {
  EXPECT_THROW(hyperperiod({}), std::invalid_argument);
}

TEST(Hyperperiod, RejectsNonPositive) {
  const std::array<Time, 2> zero{0, 5};
  EXPECT_THROW(hyperperiod(zero), std::invalid_argument);
  const std::array<Time, 2> negative{-3, 5};
  EXPECT_THROW(hyperperiod(negative), std::invalid_argument);
}

}  // namespace
