#include "ftmc/dse/variation.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ftmc;
using dse::Chromosome;
using dse::ChromosomeShape;
using dse::crossover;
using dse::mutate;
using dse::random_chromosome;
using dse::shape_ok;
using dse::VariationOptions;

const ChromosomeShape kShape{4, 3, 12, {}, {}};

TEST(Crossover, GenesComeFromParents) {
  util::Rng rng(1);
  const Chromosome a = random_chromosome(kShape, rng);
  const Chromosome b = random_chromosome(kShape, rng);
  const Chromosome child = crossover(a, b, kShape, rng);
  ASSERT_TRUE(shape_ok(child, kShape));
  for (std::size_t p = 0; p < kShape.processors; ++p)
    EXPECT_TRUE(child.allocation[p] == a.allocation[p] ||
                child.allocation[p] == b.allocation[p]);
  for (std::size_t g = 0; g < kShape.graphs; ++g)
    EXPECT_TRUE(child.keep[g] == a.keep[g] || child.keep[g] == b.keep[g]);
  for (std::size_t t = 0; t < kShape.tasks; ++t)
    EXPECT_TRUE(child.tasks[t] == a.tasks[t] || child.tasks[t] == b.tasks[t]);
}

TEST(Crossover, MixesBothParents) {
  util::Rng rng(2);
  Chromosome a = random_chromosome(kShape, rng);
  Chromosome b = random_chromosome(kShape, rng);
  // Make parents fully distinguishable.
  for (std::size_t t = 0; t < kShape.tasks; ++t) {
    a.tasks[t].base_pe = 0;
    b.tasks[t].base_pe = 1;
  }
  const Chromosome child = crossover(a, b, kShape, rng);
  std::size_t from_a = 0, from_b = 0;
  for (const auto& genes : child.tasks)
    (genes.base_pe == 0 ? from_a : from_b) += 1;
  EXPECT_GT(from_a, 0u);
  EXPECT_GT(from_b, 0u);
}

TEST(Crossover, IncompatibleParentsThrow) {
  util::Rng rng(3);
  const Chromosome a = random_chromosome(kShape, rng);
  const Chromosome b =
      random_chromosome(ChromosomeShape{4, 3, 11, {}, {}}, rng);
  EXPECT_THROW(crossover(a, b, kShape, rng), std::invalid_argument);
}

TEST(Mutate, StaysWellFormed) {
  util::Rng rng(4);
  VariationOptions options;
  options.allocation_flip_rate = 0.5;
  options.keep_flip_rate = 0.5;
  options.task_mutation_rate = 0.9;
  for (int trial = 0; trial < 100; ++trial) {
    Chromosome chromosome = random_chromosome(kShape, rng);
    mutate(chromosome, kShape, options, rng);
    EXPECT_TRUE(shape_ok(chromosome, kShape));
  }
}

TEST(Mutate, ZeroRatesChangeNothing) {
  util::Rng rng(5);
  Chromosome chromosome = random_chromosome(kShape, rng);
  const Chromosome before = chromosome;
  VariationOptions options;
  options.allocation_flip_rate = 0.0;
  options.keep_flip_rate = 0.0;
  options.task_mutation_rate = 0.0;
  mutate(chromosome, kShape, options, rng);
  EXPECT_EQ(chromosome, before);
}

TEST(Mutate, HighRatesChangeSomething) {
  util::Rng rng(6);
  Chromosome chromosome = random_chromosome(kShape, rng);
  const Chromosome before = chromosome;
  VariationOptions options;
  options.allocation_flip_rate = 1.0;  // every bit flips -> must differ
  mutate(chromosome, kShape, options, rng);
  EXPECT_NE(chromosome, before);
  for (std::size_t p = 0; p < kShape.processors; ++p)
    EXPECT_NE(chromosome.allocation[p], before.allocation[p]);
}

TEST(Mutate, Deterministic) {
  util::Rng rng_a(7), rng_b(7);
  Chromosome a = random_chromosome(kShape, rng_a);
  Chromosome b = random_chromosome(kShape, rng_b);
  ASSERT_EQ(a, b);
  VariationOptions options;
  mutate(a, kShape, options, rng_a);
  mutate(b, kShape, options, rng_b);
  EXPECT_EQ(a, b);
}

}  // namespace
