#!/usr/bin/env python3
"""Validate ftmc telemetry artifacts.

Three kinds of input, all optional, each repeatable:

  --metrics FILE        a --metrics-json export; must be a valid
                        `ftmc.metrics.v1` document (schema marker, integer
                        counters/gauges, histograms whose bucket sums match
                        their counts).
  --trace FILE          a --chrome-trace export; must be valid JSON with a
                        `traceEvents` array of B/E duration events that are
                        balanced and properly nested per (pid, tid), with
                        per-thread non-decreasing timestamps.
  --bench-output FILE   captured stdout of a bench binary; must contain
                        exactly one `JSON: {...}` summary line (see
                        bench/README.md) whose payload parses and carries a
                        string `bench` key.

Exits 0 when every artifact checks out; prints one line per violation and
exits 1 otherwise.  CI runs this over the bench-smoke artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "ftmc.metrics.v1"

errors: list[str] = []


def fail(path: str, message: str) -> None:
    errors.append(f"{path}: {message}")


def load_json(path: str):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        fail(path, f"not readable as JSON: {exc}")
        return None


def is_count(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_metrics(path: str) -> None:
    doc = load_json(path)
    if doc is None:
        return
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        fail(path, f"missing schema marker {SCHEMA!r}")
        return
    for section in ("counters", "gauges"):
        values = doc.get(section, {})
        if not isinstance(values, dict):
            fail(path, f"{section} must be an object")
            continue
        for name, value in values.items():
            if not is_count(value):
                fail(path, f"{section}[{name}] = {value!r} is not a count")
    histograms = doc.get("histograms", {})
    if not isinstance(histograms, dict):
        fail(path, "histograms must be an object")
        return
    for name, hist in histograms.items():
        if not isinstance(hist, dict):
            fail(path, f"histograms[{name}] must be an object")
            continue
        count, total = hist.get("count"), hist.get("sum")
        buckets = hist.get("buckets")
        if not is_count(count) or not is_count(total):
            fail(path, f"histograms[{name}] needs integer count and sum")
            continue
        if not isinstance(buckets, list) or not all(is_count(b) for b in buckets):
            fail(path, f"histograms[{name}].buckets must be counts")
            continue
        if sum(buckets) != count:
            fail(
                path,
                f"histograms[{name}]: bucket sum {sum(buckets)}"
                f" != count {count}",
            )


def check_trace(path: str) -> None:
    doc = load_json(path)
    if doc is None:
        return
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        fail(path, "missing traceEvents array")
        return
    stacks: dict[tuple, list[str]] = {}
    last_ts: dict[tuple, float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(path, f"traceEvents[{index}] is not an object")
            return
        phase = event.get("ph")
        if phase == "M":  # metadata (thread names)
            continue
        if phase not in ("B", "E"):
            fail(path, f"traceEvents[{index}]: unexpected phase {phase!r}")
            return
        key = (event.get("pid"), event.get("tid"))
        name = event.get("name")
        ts = event.get("ts")
        if not isinstance(name, str) or not isinstance(ts, (int, float)):
            fail(path, f"traceEvents[{index}]: needs string name + numeric ts")
            return
        if key in last_ts and ts < last_ts[key]:
            fail(path, f"traceEvents[{index}]: ts goes backwards on {key}")
            return
        last_ts[key] = ts
        stack = stacks.setdefault(key, [])
        if phase == "B":
            stack.append(name)
        else:
            if not stack:
                fail(path, f"traceEvents[{index}]: E {name!r} without open B")
                return
            if stack[-1] != name:
                fail(
                    path,
                    f"traceEvents[{index}]: E {name!r} closes"
                    f" open B {stack[-1]!r}",
                )
                return
            stack.pop()
    for key, stack in stacks.items():
        if stack:
            fail(path, f"unclosed spans {stack} on thread {key}")


def check_bench_output(path: str) -> None:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [
                line[len("JSON: "):]
                for line in handle
                if line.startswith("JSON: ")
            ]
    except OSError as exc:
        fail(path, f"not readable: {exc}")
        return
    if len(lines) != 1:
        fail(path, f"expected exactly one 'JSON: ' line, found {len(lines)}")
        return
    try:
        summary = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        fail(path, f"summary line is not valid JSON: {exc}")
        return
    if not isinstance(summary, dict) or not isinstance(
        summary.get("bench"), str
    ):
        fail(path, "summary must be an object with a string 'bench' key")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", action="append", default=[])
    parser.add_argument("--trace", action="append", default=[])
    parser.add_argument("--bench-output", action="append", default=[])
    args = parser.parse_args()
    if not (args.metrics or args.trace or args.bench_output):
        parser.error("nothing to check; pass --metrics/--trace/--bench-output")
    for path in args.metrics:
        check_metrics(path)
    for path in args.trace:
        check_trace(path)
    for path in args.bench_output:
        check_bench_output(path)
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(args.metrics) + len(args.trace) + len(args.bench_output)
    if not errors:
        print(f"check_metrics: {checked} artifact(s) OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
