#!/usr/bin/env python3
"""Validate ftmc telemetry artifacts.

Three kinds of input, all optional, each repeatable:

  --metrics FILE        a --metrics-json export; must be a valid
                        `ftmc.metrics.v1` document (schema marker, integer
                        counters/gauges, histograms whose bucket sums match
                        their counts).
  --trace FILE          a --chrome-trace export; must be valid JSON with a
                        `traceEvents` array of B/E duration events that are
                        balanced and properly nested per (pid, tid), with
                        per-thread non-decreasing timestamps.  Instant
                        events (ph "i", e.g. serve request-id annotations)
                        must carry thread scope and an args.id payload.
  --bench-output FILE   captured stdout of a bench binary; must contain
                        exactly one `JSON: {...}` summary line (see
                        bench/README.md) whose payload parses and carries a
                        string `bench` key.
  --checkpoint FILE     an `ftmc.ckpt.v1` snapshot written by the DSE
                        checkpointer; must carry the FTMCCKPT magic, a known
                        format version, a complete payload, and an FNV-1a-64
                        payload digest that matches (see
                        src/ftmc/dse/checkpoint.hpp for the layout).
  --store DIR           a persistent evaluation store directory (either one
                        store with an evals.log, or a --cache-dir root whose
                        sys-* children are stores).  The log must carry the
                        FTMCSTOR magic and a known version, every record's
                        FNV-1a-64 payload digest must match with no torn
                        tail, and the evals.idx snapshot (when present) must
                        have a valid header, a matching slots digest, and
                        slots that point at real records of the same key
                        (see src/ftmc/core/eval_store.hpp for the layout).
  --access-log FILE     an `ftmc serve --access-log` JSONL stream; every
                        record must carry the full schema (ts_ms, id,
                        method, ok, byte counts, the five us.* latency
                        stages) with total_us equal to the stage sum, an
                        error code from the ftmc.rpc.v1 taxonomy only on
                        failures, and non-decreasing timestamps.
  --prom FILE           a Prometheus text exposition (the `metrics` method
                        with format=prometheus, or --prom-textfile); every
                        sample line must parse, follow its # TYPE
                        declaration, and histogram series must be
                        cumulative, ending in a `+Inf` bucket equal to
                        `_count`.

Cross-cutting checks:

  --expect-counter NAME>=N
                        require counter NAME in every --metrics document to
                        be present and >= N (e.g. `dse.resume.loads>=1`).
                        Repeatable.
  --compare-jsonl A B   require two optimizer JSONL telemetry streams to be
                        identical on their trajectory fields; the
                        nondeterministic timing/cache keys (evaluation
                        seconds, throughput, latency percentiles, cache
                        hits) are excluded, matching the resume guarantee.

Exits 0 when every artifact checks out; prints one line per violation and
exits 1 otherwise.  CI runs this over the bench-smoke artifacts.
"""

from __future__ import annotations

import argparse
import json
import re
import struct
import sys

SCHEMA = "ftmc.metrics.v1"

CHECKPOINT_MAGIC = b"FTMCCKPT"
CHECKPOINT_VERSIONS = (2,)
CHECKPOINT_HEADER = struct.Struct("<8sIIQQ")  # magic, version, reserved,
# payload size, FNV-1a-64 payload digest

# Telemetry keys that legitimately differ between an uninterrupted run and
# a resumed one (cold caches, different machine load).  Everything else in
# a JSONL line pins the trajectory and must match bitwise.
NONDETERMINISTIC_JSONL_KEYS = frozenset(
    {
        "evaluation_seconds",
        "scenarios_per_second",
        "eval_p50_us",
        "eval_p95_us",
        "eval_max_us",
        "cache_hits",
        "cache_misses",
        "cache_hit_rate",
        "scenarios_analyzed",
        "scenario_solves",
    }
)

# Required keys of every per-benchmark entry in a `sched_kernel` bench
# summary (bench/bench_sched_kernel.cpp): the five timing arms plus the
# derived speedups/throughput.  CI fails when an arm silently disappears.
SCHED_KERNEL_ARM_KEYS = (
    "seed_s",
    "rebuild_worklist_s",
    "prepared_s",
    "warm_s",
    "warm_batch_s",
    "worklist_speedup",
    "warm_speedup",
    "batch_speedup",
    "total_speedup",
    "scenarios_per_s",
)

errors: list[str] = []


def fail(path: str, message: str) -> None:
    errors.append(f"{path}: {message}")


def load_json(path: str):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        fail(path, f"not readable as JSON: {exc}")
        return None


def is_count(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_metrics(path: str) -> None:
    doc = load_json(path)
    if doc is None:
        return
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        fail(path, f"missing schema marker {SCHEMA!r}")
        return
    for section in ("counters", "gauges"):
        values = doc.get(section, {})
        if not isinstance(values, dict):
            fail(path, f"{section} must be an object")
            continue
        for name, value in values.items():
            if not is_count(value):
                fail(path, f"{section}[{name}] = {value!r} is not a count")
    histograms = doc.get("histograms", {})
    if not isinstance(histograms, dict):
        fail(path, "histograms must be an object")
        return
    for name, hist in histograms.items():
        if not isinstance(hist, dict):
            fail(path, f"histograms[{name}] must be an object")
            continue
        count, total = hist.get("count"), hist.get("sum")
        buckets = hist.get("buckets")
        if not is_count(count) or not is_count(total):
            fail(path, f"histograms[{name}] needs integer count and sum")
            continue
        if not isinstance(buckets, list) or not all(is_count(b) for b in buckets):
            fail(path, f"histograms[{name}].buckets must be counts")
            continue
        if sum(buckets) != count:
            fail(
                path,
                f"histograms[{name}]: bucket sum {sum(buckets)}"
                f" != count {count}",
            )


def check_trace(path: str) -> None:
    doc = load_json(path)
    if doc is None:
        return
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        fail(path, "missing traceEvents array")
        return
    stacks: dict[tuple, list[str]] = {}
    last_ts: dict[tuple, float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(path, f"traceEvents[{index}] is not an object")
            return
        phase = event.get("ph")
        if phase == "M":  # metadata (thread names)
            continue
        if phase not in ("B", "E", "i"):
            fail(path, f"traceEvents[{index}]: unexpected phase {phase!r}")
            return
        key = (event.get("pid"), event.get("tid"))
        name = event.get("name")
        ts = event.get("ts")
        if not isinstance(name, str) or not isinstance(ts, (int, float)):
            fail(path, f"traceEvents[{index}]: needs string name + numeric ts")
            return
        if key in last_ts and ts < last_ts[key]:
            fail(path, f"traceEvents[{index}]: ts goes backwards on {key}")
            return
        last_ts[key] = ts
        if phase == "i":
            # Instant annotations (request ids): no stack effect, but the
            # scope and payload must be present for chrome://tracing.
            if event.get("s") != "t":
                fail(path, f"traceEvents[{index}]: instant needs s='t'")
                return
            if not isinstance(event.get("args"), dict) or not isinstance(
                event["args"].get("id"), str
            ):
                fail(path, f"traceEvents[{index}]: instant needs args.id")
                return
            continue
        stack = stacks.setdefault(key, [])
        if phase == "B":
            stack.append(name)
        else:
            if not stack:
                fail(path, f"traceEvents[{index}]: E {name!r} without open B")
                return
            if stack[-1] != name:
                fail(
                    path,
                    f"traceEvents[{index}]: E {name!r} closes"
                    f" open B {stack[-1]!r}",
                )
                return
            stack.pop()
    for key, stack in stacks.items():
        if stack:
            fail(path, f"unclosed spans {stack} on thread {key}")


def check_bench_output(path: str) -> None:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [
                line[len("JSON: "):]
                for line in handle
                if line.startswith("JSON: ")
            ]
    except OSError as exc:
        fail(path, f"not readable: {exc}")
        return
    if len(lines) != 1:
        fail(path, f"expected exactly one 'JSON: ' line, found {len(lines)}")
        return
    try:
        summary = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        fail(path, f"summary line is not valid JSON: {exc}")
        return
    if not isinstance(summary, dict) or not isinstance(
        summary.get("bench"), str
    ):
        fail(path, "summary must be an object with a string 'bench' key")
        return
    if summary["bench"] == "sched_kernel":
        check_sched_kernel_summary(path, summary)
    elif summary["bench"] == "serve":
        check_serve_summary(path, summary)
    elif summary["bench"] == "distributed":
        check_distributed_summary(path, summary)


def gated_speedup(path: str, summary: dict, key: str, floor: float) -> None:
    """Concurrency speedups only show on hosts with enough cores, so the
    summary must report hardware_concurrency and the floor applies only
    when >= 4 cores are available."""
    cores = summary.get("hardware_concurrency")
    if not is_count(cores) or cores == 0:
        fail(path, "summary must report hardware_concurrency")
        return
    speedup = summary.get(key)
    if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
        fail(path, f"summary key {key!r} missing or not numeric")
        return
    if cores >= 4 and speedup < floor:
        fail(path, f"{key} = {speedup} < {floor} on a"
                   f" {cores}-core host")


def check_serve_summary(path: str, summary: dict) -> None:
    if summary.get("identical") is not True:
        fail(path, "serve responses are not byte-identical across arms")
    gated_speedup(path, summary, "speedup_8x", 2.0)


def check_distributed_summary(path: str, summary: dict) -> None:
    if summary.get("identical") is not True:
        fail(path, "distributed fronts are not byte-identical across arms")
    gated_speedup(path, summary, "speedup", 2.0)


def check_sched_kernel_summary(path: str, summary: dict) -> None:
    benchmarks = summary.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        fail(path, "sched_kernel summary needs a non-empty 'benchmarks' list")
        return
    if summary.get("identical") is not True:
        fail(path, "sched_kernel arms are not bitwise identical")
    for index, entry in enumerate(benchmarks):
        if not isinstance(entry, dict):
            fail(path, f"benchmarks[{index}] is not an object")
            continue
        label = entry.get("name", f"benchmarks[{index}]")
        for key in SCHED_KERNEL_ARM_KEYS:
            value = entry.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(path, f"{label}: arm key {key!r} missing or not numeric")
        if entry.get("identical") is not True:
            fail(path, f"{label}: WCRT checksums differ across kernel arms")


def fnv1a64(data: bytes) -> int:
    """util::Fnv1aHasher: FNV-1a over the bytes + splitmix64 finalizer."""
    mask = 0xFFFFFFFFFFFFFFFF
    state = 0xCBF29CE484222325
    for byte in data:
        state = ((state ^ byte) * 0x100000001B3) & mask
    z = (state + 0x9E3779B97F4A7C15) & mask
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
    return z ^ (z >> 31)


def check_checkpoint(path: str) -> None:
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        fail(path, f"not readable: {exc}")
        return
    if len(blob) < CHECKPOINT_HEADER.size:
        fail(path, f"truncated header: {len(blob)} bytes")
        return
    magic, version, reserved, payload_size, digest = CHECKPOINT_HEADER.unpack(
        blob[: CHECKPOINT_HEADER.size]
    )
    if magic != CHECKPOINT_MAGIC:
        fail(path, f"bad magic {magic!r} (expected {CHECKPOINT_MAGIC!r})")
        return
    if version not in CHECKPOINT_VERSIONS:
        fail(path, f"unsupported checkpoint version {version}")
        return
    if reserved != 0:
        fail(path, f"reserved header field is {reserved}, expected 0")
    payload = blob[
        CHECKPOINT_HEADER.size: CHECKPOINT_HEADER.size + payload_size
    ]
    if len(payload) != payload_size:
        fail(
            path,
            f"truncated payload: header promises {payload_size} bytes,"
            f" file carries {len(payload)}",
        )
        return
    actual = fnv1a64(payload)
    if actual != digest:
        fail(
            path,
            f"payload digest mismatch: header {digest:#018x},"
            f" computed {actual:#018x}",
        )


STORE_LOG_MAGIC = b"FTMCSTOR"
STORE_INDEX_MAGIC = b"FTMCSIDX"
STORE_VERSIONS = (1,)
STORE_LOG_HEADER = struct.Struct("<8sII")  # magic, version, reserved
STORE_RECORD_HEADER = struct.Struct("<QIIQ")  # key, cand, eval, digest
STORE_INDEX_HEADER = struct.Struct("<8sIIQQQQ")  # magic, version, reserved,
# slot count, record count, covered log bytes, slots digest


def check_store_log(path: str) -> dict[int, int] | None:
    """Walks the record log; returns {offset: key} or None on failure."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        fail(path, f"not readable: {exc}")
        return None
    if len(blob) < STORE_LOG_HEADER.size:
        fail(path, f"truncated header: {len(blob)} bytes")
        return None
    magic, version, reserved = STORE_LOG_HEADER.unpack(
        blob[: STORE_LOG_HEADER.size]
    )
    if magic != STORE_LOG_MAGIC:
        fail(path, f"bad magic {magic!r} (expected {STORE_LOG_MAGIC!r})")
        return None
    if version not in STORE_VERSIONS:
        fail(path, f"unsupported store version {version}")
        return None
    if reserved != 0:
        fail(path, f"reserved header field is {reserved}, expected 0")
    records: dict[int, int] = {}
    offset = STORE_LOG_HEADER.size
    while offset < len(blob):
        if offset + STORE_RECORD_HEADER.size > len(blob):
            fail(path, f"torn record header at offset {offset}")
            return None
        key, cand_bytes, eval_bytes, digest = STORE_RECORD_HEADER.unpack(
            blob[offset: offset + STORE_RECORD_HEADER.size]
        )
        body_at = offset + STORE_RECORD_HEADER.size
        body_end = body_at + cand_bytes + eval_bytes
        if body_end > len(blob):
            fail(path, f"torn record payload at offset {offset}")
            return None
        if fnv1a64(blob[body_at:body_end]) != digest:
            fail(path, f"record at offset {offset}: payload digest mismatch")
            return None
        records[offset] = key
        offset = body_end
    return records


def check_store_index(path: str, records: dict[int, int],
                      log_size: int) -> None:
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        fail(path, f"not readable: {exc}")
        return
    if len(blob) < STORE_INDEX_HEADER.size:
        fail(path, f"truncated header: {len(blob)} bytes")
        return
    (magic, version, reserved, slot_count, record_count, covered,
     slots_digest) = STORE_INDEX_HEADER.unpack(
        blob[: STORE_INDEX_HEADER.size]
    )
    if magic != STORE_INDEX_MAGIC:
        fail(path, f"bad magic {magic!r} (expected {STORE_INDEX_MAGIC!r})")
        return
    if version not in STORE_VERSIONS:
        fail(path, f"unsupported index version {version}")
        return
    if reserved != 0:
        fail(path, f"reserved header field is {reserved}, expected 0")
    if slot_count == 0 or slot_count & (slot_count - 1):
        fail(path, f"slot count {slot_count} is not a power of two")
        return
    if len(blob) != STORE_INDEX_HEADER.size + slot_count * 16:
        fail(path, f"size {len(blob)} does not match {slot_count} slots")
        return
    if covered > log_size:
        fail(path, f"covers {covered} log bytes but the log has {log_size}")
    slots = blob[STORE_INDEX_HEADER.size:]
    if fnv1a64(slots) != slots_digest:
        fail(path, "slots digest mismatch")
        return
    occupied = 0
    for i in range(slot_count):
        key, offset = struct.unpack_from("<QQ", slots, i * 16)
        if offset == 0:
            continue
        occupied += 1
        if offset not in records:
            fail(path, f"slot {i} points at offset {offset},"
                       " not a record boundary")
        elif records[offset] != key:
            fail(path, f"slot {i}: key {key:#x} != record key"
                       f" {records[offset]:#x} at offset {offset}")
    if occupied != record_count:
        fail(path, f"header promises {record_count} records,"
                   f" slots hold {occupied}")


def check_store(directory: str) -> None:
    import os

    if os.path.isfile(os.path.join(directory, "evals.log")):
        stores = [directory]
    else:
        try:
            children = sorted(os.listdir(directory))
        except OSError as exc:
            fail(directory, f"not listable: {exc}")
            return
        stores = [
            os.path.join(directory, child)
            for child in children
            if child.startswith("sys-")
            and os.path.isfile(os.path.join(directory, child, "evals.log"))
        ]
        if not stores:
            fail(directory, "no evals.log here and no sys-* store children")
            return
    for store in stores:
        log_path = os.path.join(store, "evals.log")
        records = check_store_log(log_path)
        if records is None:
            continue
        index_path = os.path.join(store, "evals.idx")
        if os.path.isfile(index_path):
            check_store_index(index_path, records,
                              os.path.getsize(log_path))


ACCESS_LOG_STAGES = ("read", "parse", "dispatch", "render", "write")

# The ftmc.rpc.v1 structured error taxonomy (docs/PROTOCOL.md); the access
# log's `error` field carries exactly the code the response did.
ACCESS_LOG_ERROR_CODES = (
    "bad_request",
    "unknown_method",
    "version_mismatch",
    "shutting_down",
    "internal",
)


def check_access_log(path: str) -> None:
    lines = load_jsonl(path)
    if lines is None:
        return
    if not lines:
        fail(path, "access log is empty")
        return
    last_ts = 0
    for index, record in enumerate(lines):
        label = f"record {index + 1}"
        ts = record.get("ts_ms")
        if not is_count(ts) or ts == 0:
            fail(path, f"{label}: ts_ms missing or not a positive integer")
            continue
        if ts < last_ts:
            fail(path, f"{label}: ts_ms goes backwards")
        last_ts = ts
        rid = record.get("id")
        if not isinstance(rid, str) or not rid:
            fail(path, f"{label}: id must be a non-empty string")
        ok = record.get("ok")
        if not isinstance(ok, bool):
            fail(path, f"{label}: ok must be a boolean")
            continue
        error = record.get("error")
        if ok and error is not None:
            fail(path, f"{label}: error code on a successful request")
        if not ok and error not in ACCESS_LOG_ERROR_CODES:
            fail(path, f"{label}: error code {error!r} not in the"
                       " ftmc.rpc.v1 taxonomy")
        method = record.get("method")
        if not isinstance(method, str) or (
            not method and error != "bad_request"
        ):
            fail(path, f"{label}: method missing (and not a bad_request)")
        cache = record.get("cache")
        if cache is not None and cache not in ("hit", "miss"):
            fail(path, f"{label}: cache outcome {cache!r} not hit/miss")
        for key in ("bytes_in", "bytes_out"):
            if not is_count(record.get(key)):
                fail(path, f"{label}: {key} missing or not a count")
        stages = record.get("us")
        if not isinstance(stages, dict):
            fail(path, f"{label}: us stage breakdown missing")
            continue
        total = 0
        complete = True
        for stage in ACCESS_LOG_STAGES:
            value = stages.get(stage)
            if not is_count(value):
                fail(path, f"{label}: us.{stage} missing or not a count")
                complete = False
            else:
                total += value
        if complete and record.get("total_us") != total:
            fail(
                path,
                f"{label}: total_us {record.get('total_us')} != stage sum"
                f" {total}",
            )
        if not isinstance(record.get("slow"), bool):
            fail(path, f"{label}: slow must be a boolean")


PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[0-9.eE+-]+|\+Inf|-Inf|NaN)$"
)


def check_prom(path: str) -> None:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read()
    except OSError as exc:
        fail(path, f"not readable: {exc}")
        return
    types: dict[str, str] = {}
    # histogram base name -> list of (le, cumulative count), plus _count
    buckets: dict[str, list[tuple[str, float]]] = {}
    counts: dict[str, float] = {}
    for index, line in enumerate(raw.splitlines()):
        label = f"line {index + 1}"
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
            ):
                fail(path, f"{label}: malformed TYPE declaration")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = PROM_SAMPLE.match(line)
        if match is None:
            fail(path, f"{label}: unparseable sample line {line!r}")
            continue
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        if base not in types and name not in types:
            fail(path, f"{label}: sample {name!r} precedes its TYPE line")
            continue
        declared = types.get(base, types.get(name))
        try:
            value = float(match.group("value").replace("+Inf", "inf"))
        except ValueError:
            fail(path, f"{label}: bad sample value {match.group('value')!r}")
            continue
        if declared == "histogram":
            if name.endswith("_bucket"):
                labels = match.group("labels") or ""
                le = None
                for part in labels.split(","):
                    key, _, bound = part.partition("=")
                    if key == "le":
                        le = bound.strip('"')
                if le is None:
                    fail(path, f"{label}: histogram bucket without le label")
                    continue
                buckets.setdefault(base, []).append((le, value))
            elif name.endswith("_count"):
                counts[base] = value
    for base, series in buckets.items():
        cumulative = [value for _, value in series]
        if cumulative != sorted(cumulative):
            fail(path, f"histogram {base}: buckets are not cumulative")
        if not series or series[-1][0] != "+Inf":
            fail(path, f"histogram {base}: last bucket must be le='+Inf'")
            continue
        if base in counts and series[-1][1] != counts[base]:
            fail(
                path,
                f"histogram {base}: +Inf bucket {series[-1][1]}"
                f" != _count {counts[base]}",
            )


def parse_counter_expectation(spec: str) -> tuple[str, int] | None:
    name, sep, bound = spec.partition(">=")
    if not sep or not name or not bound.isdigit():
        fail(spec, "expectation must look like 'counter.name>=N'")
        return None
    return name, int(bound)


def check_expected_counters(path: str, expectations: list[tuple[str, int]]):
    doc = load_json(path)
    if doc is None or not isinstance(doc, dict):
        return
    counters = doc.get("counters", {})
    if not isinstance(counters, dict):
        return  # shape violations already reported by check_metrics
    for name, bound in expectations:
        value = counters.get(name)
        if not is_count(value):
            fail(path, f"counter {name!r} missing (expected >= {bound})")
        elif value < bound:
            fail(path, f"counter {name} = {value}, expected >= {bound}")


def load_jsonl(path: str) -> list[dict] | None:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = [line for line in handle if line.strip()]
    except OSError as exc:
        fail(path, f"not readable: {exc}")
        return None
    lines: list[dict] = []
    for index, line in enumerate(raw):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(path, f"line {index + 1} is not valid JSON: {exc}")
            return None
        if not isinstance(doc, dict):
            fail(path, f"line {index + 1} is not an object")
            return None
        lines.append(doc)
    return lines


def compare_jsonl(path_a: str, path_b: str) -> None:
    a, b = load_jsonl(path_a), load_jsonl(path_b)
    if a is None or b is None:
        return
    label = f"{path_a} vs {path_b}"
    if len(a) != len(b):
        fail(label, f"line counts differ: {len(a)} vs {len(b)}")
        return
    for index, (line_a, line_b) in enumerate(zip(a, b)):
        trimmed_a = {
            k: v
            for k, v in line_a.items()
            if k not in NONDETERMINISTIC_JSONL_KEYS
        }
        trimmed_b = {
            k: v
            for k, v in line_b.items()
            if k not in NONDETERMINISTIC_JSONL_KEYS
        }
        if trimmed_a != trimmed_b:
            diff = sorted(
                k
                for k in set(trimmed_a) | set(trimmed_b)
                if trimmed_a.get(k) != trimmed_b.get(k)
            )
            fail(
                label,
                f"line {index + 1}: trajectory fields differ: {diff}",
            )
            return


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", action="append", default=[])
    parser.add_argument("--trace", action="append", default=[])
    parser.add_argument("--bench-output", action="append", default=[])
    parser.add_argument("--checkpoint", action="append", default=[])
    parser.add_argument("--store", action="append", default=[])
    parser.add_argument("--access-log", action="append", default=[])
    parser.add_argument("--prom", action="append", default=[])
    parser.add_argument("--expect-counter", action="append", default=[])
    parser.add_argument(
        "--compare-jsonl", nargs=2, action="append", default=[]
    )
    args = parser.parse_args()
    if not (
        args.metrics
        or args.trace
        or args.bench_output
        or args.checkpoint
        or args.store
        or args.access_log
        or args.prom
        or args.compare_jsonl
    ):
        parser.error(
            "nothing to check; pass --metrics/--trace/--bench-output/"
            "--checkpoint/--store/--access-log/--prom/--compare-jsonl"
        )
    if args.expect_counter and not args.metrics:
        parser.error("--expect-counter requires at least one --metrics")
    expectations = [
        parsed
        for spec in args.expect_counter
        if (parsed := parse_counter_expectation(spec)) is not None
    ]
    for path in args.metrics:
        check_metrics(path)
        if expectations:
            check_expected_counters(path, expectations)
    for path in args.trace:
        check_trace(path)
    for path in args.bench_output:
        check_bench_output(path)
    for path in args.checkpoint:
        check_checkpoint(path)
    for path in args.store:
        check_store(path)
    for path in args.access_log:
        check_access_log(path)
    for path in args.prom:
        check_prom(path)
    for pair in args.compare_jsonl:
        compare_jsonl(pair[0], pair[1])
    for error in errors:
        print(error, file=sys.stderr)
    checked = (
        len(args.metrics)
        + len(args.trace)
        + len(args.bench_output)
        + len(args.checkpoint)
        + len(args.store)
        + len(args.access_log)
        + len(args.prom)
        + len(args.compare_jsonl)
    )
    if not errors:
        print(f"check_metrics: {checked} artifact(s) OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
