// Unified command-line option handling for the ftmc tool.
//
// Every subcommand builds one OptionParser, reads its options through the
// typed accessors (which register the option as known), and calls finish()
// exactly once at the end.  finish() walks the raw argument list and
// rejects anything that is not a registered `--key=value` or `--flag` —
// with the same message shape for every subcommand, so a typo fails loudly
// and identically everywhere.  Typed accessors also turn malformed values
// into errors that name the offending option instead of a bare
// std::invalid_argument from the bowels of std::stoul.
//
// CommonOptions carries the surface shared by every heavy subcommand
// (--threads, --metrics-json, --chrome-trace, --quiet) plus checkpointing
// (--checkpoint, --checkpoint-every, --resume) for the commands that opt
// into it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ftmc/obs/export.hpp"
#include "ftmc/obs/trace.hpp"

namespace cli {

class OptionParser {
 public:
  /// Arguments from index `first` on belong to the subcommand (`argv[1]` is
  /// the command, `argv[2]` the system file).
  OptionParser(std::string command, int argc, char** argv, int first = 3)
      : command_(std::move(command)) {
    for (int i = first; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  const std::string& command() const { return command_; }

  /// --key=value lookup (registers `key`).
  std::string str(const std::string& key, const std::string& fallback) {
    keys_.push_back(key);
    const std::string prefix = "--" + key + "=";
    std::string value = fallback;
    for (const std::string& arg : args_)
      if (arg.rfind(prefix, 0) == 0) value = arg.substr(prefix.size());
    return value;
  }

  std::uint64_t u64(const std::string& key, std::uint64_t fallback) {
    const std::string value = str(key, "");
    if (value.empty()) return fallback;
    try {
      std::size_t used = 0;
      const std::uint64_t parsed = std::stoull(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
      return parsed;
    } catch (const std::exception&) {
      throw std::runtime_error(command_ + ": option '--" + key +
                               "' expects an unsigned integer, got '" +
                               value + "'");
    }
  }

  std::size_t size(const std::string& key, std::size_t fallback) {
    return static_cast<std::size_t>(
        u64(key, static_cast<std::uint64_t>(fallback)));
  }

  double f64(const std::string& key, double fallback) {
    const std::string value = str(key, "");
    if (value.empty()) return fallback;
    try {
      std::size_t used = 0;
      const double parsed = std::stod(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
      return parsed;
    } catch (const std::exception&) {
      throw std::runtime_error(command_ + ": option '--" + key +
                               "' expects a number, got '" + value + "'");
    }
  }

  /// Comma-separated --key=a,b,c of unsigned integers (registers `key`).
  std::vector<std::uint64_t> u64_list(const std::string& key) {
    const std::string value = str(key, "");
    std::vector<std::uint64_t> values;
    std::size_t begin = 0;
    while (begin <= value.size() && !value.empty()) {
      const std::size_t end = std::min(value.find(',', begin), value.size());
      const std::string item = value.substr(begin, end - begin);
      try {
        std::size_t used = 0;
        const std::uint64_t parsed = std::stoull(item, &used);
        if (item.empty() || used != item.size())
          throw std::invalid_argument(item);
        values.push_back(parsed);
      } catch (const std::exception&) {
        throw std::runtime_error(command_ + ": option '--" + key +
                                 "' expects comma-separated unsigned "
                                 "integers, got '" +
                                 value + "'");
      }
      begin = end + 1;
      if (end == value.size()) break;
    }
    return values;
  }

  /// Comma-separated --key=a,b,c of strings (registers `key`; empty items
  /// are dropped, so a trailing comma is harmless).
  std::vector<std::string> str_list(const std::string& key) {
    const std::string value = str(key, "");
    std::vector<std::string> values;
    for (std::size_t begin = 0; begin < value.size();) {
      const std::size_t end = std::min(value.find(',', begin), value.size());
      if (end > begin) values.push_back(value.substr(begin, end - begin));
      begin = end + 1;
    }
    return values;
  }

  /// Boolean --name (registers `name`).
  bool flag(const std::string& name) {
    flags_.push_back(name);
    const std::string wanted = "--" + name;
    return std::find(args_.begin(), args_.end(), wanted) != args_.end();
  }

  /// Strict validation: every argument must be a registered `--key=value`
  /// option or boolean `--flag`.  A typo fails loudly here instead of being
  /// silently ignored — identically for every subcommand.
  void finish() const {
    for (const std::string& arg : args_) {
      const std::string_view view = arg;
      if (view.rfind("--", 0) != 0)
        throw std::runtime_error(command_ + ": unexpected argument '" + arg +
                                 "'");
      const std::string_view body = view.substr(2);
      const std::size_t eq = body.find('=');
      if (eq != std::string_view::npos) {
        const std::string key(body.substr(0, eq));
        if (std::find(keys_.begin(), keys_.end(), key) != keys_.end())
          continue;
        throw std::runtime_error(command_ + ": unknown option '--" + key +
                                 "' (run `ftmc` for usage)");
      }
      const std::string name(body);
      if (std::find(flags_.begin(), flags_.end(), name) != flags_.end())
        continue;
      if (std::find(keys_.begin(), keys_.end(), name) != keys_.end())
        throw std::runtime_error(command_ + ": option '" + arg +
                                 "' expects a value (" + arg + "=...)");
      throw std::runtime_error(command_ + ": unknown flag '" + arg +
                               "' (run `ftmc` for usage)");
    }
  }

 private:
  std::string command_;
  std::vector<std::string> args_;
  std::vector<std::string> keys_;
  std::vector<std::string> flags_;
};

/// The option surface shared by analyze/simulate/optimize.  parse() must
/// run before the command does real work — tracing has to start first; call
/// finish_telemetry() after the command's results are printed.
struct CommonOptions {
  std::size_t threads = 0;
  std::string metrics_json;
  std::string chrome_trace;
  bool quiet = false;

  // Checkpointing surface (read only when `with_checkpointing`; commands
  // without it reject the flags like any other unknown option).
  std::string checkpoint;
  std::size_t checkpoint_every = 1;
  std::string resume;

  static CommonOptions parse(OptionParser& parser,
                             bool with_checkpointing = false) {
    CommonOptions common;
    common.threads = parser.size("threads", 0);
    common.metrics_json = parser.str("metrics-json", "");
    common.chrome_trace = parser.str("chrome-trace", "");
    common.quiet = parser.flag("quiet");
    if (with_checkpointing) {
      common.checkpoint = parser.str("checkpoint", "");
      common.checkpoint_every = parser.size("checkpoint-every", 1);
      common.resume = parser.str("resume", "");
      if (!common.resume.empty() && !common.checkpoint.empty() &&
          common.resume != common.checkpoint)
        throw std::runtime_error(
            parser.command() +
            ": --resume and --checkpoint name different files; a resumed "
            "run continues checkpointing to the file it resumed from");
    }
    if (!common.chrome_trace.empty()) ftmc::obs::enable_tracing();
    return common;
  }

  /// Checkpoint base path honoring the --resume default.
  std::string checkpoint_path() const {
    return checkpoint.empty() ? resume : checkpoint;
  }

  void finish_telemetry() const {
    ftmc::obs::export_metrics_file(metrics_json);
    ftmc::obs::export_chrome_trace_file(chrome_trace);
  }
};

/// The GA-campaign option surface shared by `optimize` and `campaign` —
/// one strict parser, so every flag spells, defaults, and validates
/// identically in both subcommands.  `campaign` additionally reads the
/// coordinator/worker flags (pass distributed = true); `optimize` rejects
/// them like any other unknown option.
///
/// This struct holds raw parsed values only; mapping onto
/// dse::CampaignOptions (and dist::WorkerFleetOptions) stays in the CLI so
/// this header needs no heavyweight includes.
struct CampaignOptions {
  // GA shape.
  std::size_t generations = 60;
  std::size_t population = 40;
  std::uint64_t seed = 42;
  std::vector<std::uint64_t> seeds;  ///< one island/shard per seed
  bool no_cache = false;
  bool sequential_scenarios = false;
  bool no_dropping = false;
  bool power_only = false;

  // Budget / robustness.
  double max_seconds = 0.0;
  std::size_t max_evaluations = 0;
  std::size_t max_retries = 2;

  // Artifacts.
  std::string telemetry_jsonl;
  std::string out;
  std::string front_json;
  std::string cache_dir;

  // Coordinator/worker surface (campaign only).
  std::size_t workers = 0;                ///< local `ftmc serve` spawns
  std::vector<std::string> worker_hosts;  ///< external host:port workers
  std::size_t worker_threads = 0;         ///< --threads for spawned workers
  std::size_t migration_every = 0;  ///< generations per island epoch
  std::size_t migration_size = 4;   ///< migrants per island per barrier
  double straggler_factor = 3.0;    ///< epoch-EWMA straggler threshold

  static CampaignOptions parse(OptionParser& parser,
                               bool distributed = false) {
    CampaignOptions campaign;
    campaign.generations = parser.size("generations", 60);
    campaign.population = parser.size("population", 40);
    campaign.seed = parser.u64("seed", 42);
    campaign.seeds = parser.u64_list("seeds");
    campaign.no_cache = parser.flag("no-cache");
    campaign.sequential_scenarios = parser.flag("sequential-scenarios");
    campaign.no_dropping = parser.flag("no-dropping");
    campaign.power_only = parser.flag("power-only");
    campaign.max_seconds = parser.f64("max-seconds", 0.0);
    campaign.max_evaluations = parser.size("max-evaluations", 0);
    campaign.max_retries = parser.size("retries", 2);
    campaign.telemetry_jsonl = parser.str("telemetry-jsonl", "");
    campaign.out = parser.str("out", "");
    campaign.front_json = parser.str("front-json", "");
    campaign.cache_dir = parser.str("cache-dir", "");
    if (distributed) {
      campaign.workers = parser.size("workers", 0);
      campaign.worker_hosts = parser.str_list("worker-hosts");
      campaign.worker_threads = parser.size("worker-threads", 0);
      // Campaigns run the island model by default: a migration barrier
      // every 10 generations (0 restores independent shards).
      campaign.migration_every = parser.size("migration-every", 10);
      campaign.migration_size = parser.size("migration-size", 4);
      campaign.straggler_factor = parser.f64("straggler-factor", 3.0);
    }
    return campaign;
  }
};

}  // namespace cli
