// ftmc — command-line front end.
//
//   ftmc info <system.ftmc>                  model summary
//   ftmc analyze <system.ftmc>               Algorithm 1 on the candidate
//   ftmc simulate <system.ftmc> [options]    Monte-Carlo fault injection
//       --profiles=N (default 1000) --fault-prob=P (0.3) --seed=S (1)
//       --threads=N (hardware) --trace-level=responses|jobs|full (responses)
//   ftmc optimize <system.ftmc> [options]    GA design-space exploration
//       --generations=N (60) --population=N (40) --seed=S (42)
//       --threads=N (hardware) --no-cache --sequential-scenarios
//       --no-dropping --power-only --out=<file>   (write best candidate)
//
// The system file format is documented in ftmc/io/text_format.hpp; `ftmc
// optimize --out=` writes a full system + candidate file that `analyze` and
// `simulate` accept.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "ftmc/core/evaluator.hpp"
#include "ftmc/dse/ga.hpp"
#include "ftmc/io/dot_export.hpp"
#include "ftmc/io/text_format.hpp"
#include "ftmc/obs/export.hpp"
#include "ftmc/obs/json.hpp"
#include "ftmc/obs/trace.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "ftmc/util/log.hpp"
#include "ftmc/util/table.hpp"
#include "ftmc/util/thread_pool.hpp"

using namespace ftmc;

namespace {

int usage() {
  std::cerr <<
      "usage: ftmc <command> <system.ftmc> [options]\n"
      "commands:\n"
      "  info      print a model summary\n"
      "  dot       emit Graphviz (hardened view when a candidate exists)\n"
      "  analyze   run Algorithm 1 on the file's candidate block\n"
      "            [--threads=N]  (parallel transition scenarios)\n"
      "  simulate  Monte-Carlo fault injection on the candidate\n"
      "            [--profiles=N] [--fault-prob=P] [--seed=S]\n"
      "            [--threads=N] [--trace-level=responses|jobs|full]\n"
      "  optimize  genetic design-space exploration\n"
      "            [--generations=N] [--population=N] [--seed=S]\n"
      "            [--threads=N] [--no-cache] [--sequential-scenarios]\n"
      "            [--no-dropping] [--power-only] [--out=FILE]\n"
      "            [--telemetry-jsonl=FILE]  (per-generation stats stream)\n"
      "telemetry (analyze/simulate/optimize):\n"
      "  --metrics-json=FILE   write the final counter/histogram snapshot\n"
      "  --chrome-trace=FILE   record spans, write Chrome trace-event JSON\n"
      "  --quiet               suppress progress output (results only)\n";
  return 2;
}

/// --key=value option lookup.
std::string option(int argc, char** argv, const std::string& key,
                   const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 3; i < argc; ++i)
    if (std::string(argv[i]).rfind(prefix, 0) == 0)
      return std::string(argv[i]).substr(prefix.size());
  return fallback;
}

bool flag(int argc, char** argv, const std::string& name) {
  const std::string wanted = "--" + name;
  for (int i = 3; i < argc; ++i)
    if (wanted == argv[i]) return true;
  return false;
}

/// Strict option validation: every argument after the system file must be a
/// known `--key=value` option or boolean `--flag` of the command.  A typo'd
/// option fails loudly here instead of being silently ignored.
void validate_options(const std::string& command, int argc, char** argv,
                      std::initializer_list<std::string_view> keys,
                      std::initializer_list<std::string_view> flags) {
  for (int i = 3; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::runtime_error(command + ": unexpected argument '" +
                               std::string(arg) + "'");
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      const std::string_view key = body.substr(0, eq);
      if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
      throw std::runtime_error(command + ": unknown option '--" +
                               std::string(key) +
                               "' (run `ftmc` for usage)");
    }
    if (std::find(flags.begin(), flags.end(), body) != flags.end()) continue;
    if (std::find(keys.begin(), keys.end(), body) != keys.end())
      throw std::runtime_error(command + ": option '" + std::string(arg) +
                               "' expects a value (" + std::string(arg) +
                               "=...)");
    throw std::runtime_error(command + ": unknown flag '" + std::string(arg) +
                             "' (run `ftmc` for usage)");
  }
}

/// --metrics-json= / --chrome-trace= handling, shared by the three heavy
/// commands.  Tracing must start before the command runs, so construct this
/// first; export after the command's result is printed.
struct Telemetry {
  std::string metrics_path;
  std::string trace_path;

  static Telemetry setup(int argc, char** argv) {
    Telemetry telemetry;
    telemetry.metrics_path = option(argc, argv, "metrics-json", "");
    telemetry.trace_path = option(argc, argv, "chrome-trace", "");
    if (!telemetry.trace_path.empty()) obs::enable_tracing();
    return telemetry;
  }

  void finish() const {
    obs::export_metrics_file(metrics_path);
    obs::export_chrome_trace_file(trace_path);
  }
};

core::Candidate require_candidate(const io::SystemSpec& spec) {
  if (!spec.candidate.has_value())
    throw std::runtime_error(
        "the system file has no candidate block; add one or run "
        "`ftmc optimize` first");
  return *spec.candidate;
}

int cmd_dot(const io::SystemSpec& spec) {
  if (spec.candidate.has_value()) {
    const auto system = hardening::apply_hardening(
        spec.apps, spec.candidate->plan, spec.candidate->base_mapping,
        spec.arch.processor_count());
    io::write_dot(std::cout, spec.arch, system);
  } else {
    io::write_dot(std::cout, spec.apps);
  }
  return 0;
}

int cmd_info(const io::SystemSpec& spec) {
  std::cout << "platform: " << spec.arch.processor_count()
            << " processors, bandwidth " << spec.arch.bandwidth()
            << " bytes/us\n";
  util::Table table("applications");
  table.set_header({"name", "tasks", "period", "criticality",
                    "total wcet"});
  for (std::uint32_t g = 0; g < spec.apps.graph_count(); ++g) {
    const auto& graph = spec.apps.graph(model::GraphId{g});
    table.add_row({graph.name(), util::Table::cell(graph.task_count()),
                   io::format_time(graph.period()),
                   graph.droppable()
                       ? "droppable (sv " +
                             util::Table::cell(graph.service_value(), 1) + ")"
                       : "critical (f " +
                             util::Table::cell(graph.reliability_constraint(),
                                               14) +
                             ")",
                   io::format_time(graph.total_wcet())});
  }
  table.print(std::cout);
  std::cout << "hyperperiod: " << io::format_time(spec.apps.hyperperiod())
            << "\ncandidate block: "
            << (spec.candidate.has_value() ? "present" : "absent") << '\n';
  return 0;
}

int cmd_analyze(const io::SystemSpec& spec, int argc, char** argv) {
  validate_options("analyze", argc, argv,
                   {"threads", "metrics-json", "chrome-trace"}, {"quiet"});
  const Telemetry telemetry = Telemetry::setup(argc, argv);
  const core::Candidate candidate = require_candidate(spec);
  const sched::HolisticAnalysis backend;
  // Transition scenarios are independent; fan them out unless --threads=1.
  const std::size_t threads =
      std::stoul(option(argc, argv, "threads", "0"));
  std::optional<util::ThreadPool> pool;
  core::Evaluator::Options evaluator_options;
  if (threads != 1) {
    pool.emplace(threads);
    evaluator_options.scenario_pool = &*pool;
  }
  const core::Evaluator evaluator(spec.arch, spec.apps, backend,
                                  evaluator_options);
  if (const auto error = evaluator.structural_error(candidate);
      !error.empty())
    throw std::runtime_error("candidate invalid: " + error);
  const core::Evaluation evaluation = evaluator.evaluate(candidate);

  std::cout << "feasible:             "
            << (evaluation.feasible() ? "yes" : "no") << '\n'
            << "  mapping valid:      "
            << (evaluation.mapping_valid ? "yes" : "no") << '\n'
            << "  reliability (f_t):  "
            << (evaluation.reliability_ok ? "met" : "VIOLATED") << '\n'
            << "  normal state:       "
            << (evaluation.normal_schedulable ? "schedulable"
                                              : "NOT schedulable")
            << '\n'
            << "  critical state:     "
            << (evaluation.critical_schedulable ? "schedulable"
                                                : "NOT schedulable")
            << '\n'
            << "expected power:       " << evaluation.power << " mW\n"
            << "service after drops:  " << evaluation.service << '\n'
            << "transition scenarios: " << evaluation.scenario_count << '\n';
  util::Table table("\nWCRT bounds (Algorithm 1)");
  table.set_header({"application", "WCRT", "deadline", "note"});
  for (std::uint32_t g = 0; g < spec.apps.graph_count(); ++g) {
    const auto& graph = spec.apps.graph(model::GraphId{g});
    const auto wcrt = evaluation.graph_wcrt[g];
    table.add_row({graph.name(),
                   wcrt >= sched::kUnschedulable ? "unbounded"
                                                 : io::format_time(wcrt),
                   io::format_time(graph.deadline()),
                   candidate.drop[g] ? "normal state only (dropped)" : ""});
  }
  table.print(std::cout);
  telemetry.finish();
  return evaluation.feasible() ? 0 : 1;
}

sim::TraceLevel parse_trace_level(const std::string& name) {
  if (name == "responses") return sim::TraceLevel::kResponses;
  if (name == "jobs") return sim::TraceLevel::kJobs;
  if (name == "full") return sim::TraceLevel::kFull;
  throw std::runtime_error("unknown --trace-level '" + name +
                           "' (expected responses, jobs, or full)");
}

int cmd_simulate(const io::SystemSpec& spec, int argc, char** argv) {
  validate_options("simulate", argc, argv,
                   {"profiles", "fault-prob", "seed", "threads", "trace-level",
                    "metrics-json", "chrome-trace"},
                   {"quiet"});
  const Telemetry telemetry = Telemetry::setup(argc, argv);
  const core::Candidate candidate = require_candidate(spec);
  const auto system = hardening::apply_hardening(
      spec.apps, candidate.plan, candidate.base_mapping,
      spec.arch.processor_count());
  const auto priorities = sched::assign_priorities(system.apps);
  sim::MonteCarloOptions options;
  options.profiles =
      std::stoul(option(argc, argv, "profiles", "1000"));
  options.fault_probability =
      std::stod(option(argc, argv, "fault-prob", "0.3"));
  options.seed = std::stoull(option(argc, argv, "seed", "1"));
  options.threads = std::stoul(option(argc, argv, "threads", "0"));
  options.trace =
      parse_trace_level(option(argc, argv, "trace-level", "responses"));
  const auto start = std::chrono::steady_clock::now();
  const auto result = sim::monte_carlo_wcrt(spec.arch, system,
                                            candidate.drop, priorities,
                                            options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  util::Table table("Monte-Carlo response distribution (" +
                    std::to_string(options.profiles) + " profiles, p_fault " +
                    option(argc, argv, "fault-prob", "0.3") + ")");
  table.set_header({"application", "mean", "p95", "p99", "max", "deadline",
                    "misses", "dropped"});
  for (std::uint32_t g = 0; g < system.apps.graph_count(); ++g) {
    const auto& graph = system.apps.graph(model::GraphId{g});
    const auto& dist = result.distribution[g];
    if (dist.observations == 0) {
      table.add_row({graph.name(), "always dropped", "", "", "",
                     io::format_time(graph.deadline()), "",
                     util::Table::cell(dist.dropped)});
      continue;
    }
    table.add_row({graph.name(),
                   io::format_time(static_cast<model::Time>(dist.mean)),
                   io::format_time(dist.p95), io::format_time(dist.p99),
                   io::format_time(dist.max),
                   io::format_time(graph.deadline()),
                   util::Table::cell(dist.deadline_misses),
                   util::Table::cell(dist.dropped)});
  }
  table.print(std::cout);
  std::cout << "profiles with a deadline miss: "
            << result.deadline_miss_profiles << " / " << options.profiles
            << '\n';
  // Throughput is progress/diagnostic output, not a result: it goes through
  // the leveled logger so --quiet silences it.
  util::log_info("events processed: ", result.events_processed, " (",
                 static_cast<std::size_t>(
                     seconds > 0.0
                         ? static_cast<double>(result.events_processed) /
                               seconds
                         : 0.0),
                 " events/s, ", util::Table::cell(seconds, 3),
                 " s, trace level ", to_string(options.trace), ")");
  telemetry.finish();
  return 0;
}

int cmd_optimize(const io::SystemSpec& spec, int argc, char** argv) {
  validate_options("optimize", argc, argv,
                   {"generations", "population", "seed", "threads", "out",
                    "telemetry-jsonl", "metrics-json", "chrome-trace"},
                   {"no-cache", "sequential-scenarios", "no-dropping",
                    "power-only", "quiet"});
  const Telemetry telemetry = Telemetry::setup(argc, argv);
  const sched::HolisticAnalysis backend;
  dse::GeneticOptimizer optimizer(spec.arch, spec.apps, backend);
  dse::GaOptions options;
  options.generations =
      std::stoul(option(argc, argv, "generations", "60"));
  options.population =
      std::stoul(option(argc, argv, "population", "40"));
  options.offspring = options.population;
  options.seed = std::stoull(option(argc, argv, "seed", "42"));
  options.threads = std::stoul(option(argc, argv, "threads", "0"));
  options.cache_evaluations = !flag(argc, argv, "no-cache");
  options.parallel_scenarios = !flag(argc, argv, "sequential-scenarios");
  options.optimize_service = !flag(argc, argv, "power-only");
  if (flag(argc, argv, "no-dropping")) {
    options.decoder.allow_dropping = false;
    options.evaluator.allow_dropping = false;
  }
  // Per-generation telemetry stream: one JSON object per line, written as
  // each generation completes so a run can be watched (or post-processed)
  // while it is still going.
  const std::string jsonl_path = option(argc, argv, "telemetry-jsonl", "");
  std::ofstream jsonl;
  if (!jsonl_path.empty()) {
    jsonl.open(jsonl_path);
    if (!jsonl)
      throw std::runtime_error("cannot write '" + jsonl_path + "': " +
                               std::strerror(errno));
  }
  options.on_generation = [&](const dse::GenerationStats& stats) {
    if (jsonl.is_open()) {
      obs::Json line = obs::Json::object();
      line.set("generation", stats.generation)
          .set("front_size", stats.feasible_in_archive)
          .set("best_feasible_power", stats.best_feasible_power)
          .set("evaluations", stats.evaluations)
          .set("cache_hits", stats.cache_hits)
          .set("cache_misses", stats.cache_misses)
          .set("cache_hit_rate", stats.cache_hit_rate)
          .set("scenarios_analyzed", stats.scenarios_analyzed)
          .set("scenarios_per_second", stats.scenarios_per_second)
          .set("evaluation_seconds", stats.evaluation_seconds)
          .set("eval_p50_us", stats.eval_p50_us)
          .set("eval_p95_us", stats.eval_p95_us)
          .set("eval_max_us", stats.eval_max_us);
      jsonl << line << '\n' << std::flush;
    }
    if (stats.generation % 10 == 0)
      util::log_info("generation ", stats.generation, ", best power ",
                     stats.best_feasible_power, " mW, cache hit rate ",
                     static_cast<int>(stats.cache_hit_rate * 100.0 + 0.5),
                     "%, ",
                     static_cast<std::size_t>(stats.scenarios_per_second),
                     " scenarios/s");
  };

  const auto result = optimizer.run(options);
  util::log_info("evaluation cache: ", result.cache.hits, " hits / ",
                 result.cache.lookups(), " lookups (",
                 static_cast<int>(result.cache.hit_rate() * 100.0 + 0.5),
                 "%), ", result.cache.evictions, " evictions");
  if (result.pareto.empty()) {
    std::cout << "no feasible design found (" << result.evaluations
              << " evaluations) — raise --generations/--population\n";
    telemetry.finish();
    return 1;
  }
  util::Table table("Pareto-optimal designs");
  table.set_header({"power [mW]", "service"});
  const dse::Individual* best = &result.pareto.front();
  for (const auto& individual : result.pareto) {
    table.add_row({util::Table::cell(individual.evaluation.power, 2),
                   util::Table::cell(individual.evaluation.service, 1)});
    if (individual.evaluation.power < best->evaluation.power)
      best = &individual;
  }
  table.print(std::cout);
  std::cout << result.evaluations << " evaluations\n";

  const std::string out_path = option(argc, argv, "out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot write '" + out_path + "'");
    io::write_system(out, spec.arch, spec.apps, &best->candidate);
    std::cout << "lowest-power design written to " << out_path << '\n';
  }
  telemetry.finish();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const bool known = command == "info" || command == "dot" ||
                     command == "analyze" || command == "simulate" ||
                     command == "optimize";
  if (!known) {
    std::cerr << "error: unknown command '" << command << "'\n";
    return usage();
  }
  // A known command with no file is a targeted complaint, not a usage dump:
  // the user got the command right and only needs the missing piece.
  if (argc < 3) {
    std::cerr << "error: " << command
              << ": missing <system.ftmc> argument\n";
    return 2;
  }
  // Progress goes through the leveled logger; results go to stdout.
  util::Logger::instance().set_level(flag(argc, argv, "quiet")
                                         ? util::LogLevel::kWarn
                                         : util::LogLevel::kInfo);
  try {
    {
      // Probe the system file up front so a bad path names the file instead
      // of surfacing as a parse error (or worse, a generic usage message).
      std::ifstream probe(argv[2]);
      if (!probe)
        throw std::runtime_error("cannot read system file '" +
                                 std::string(argv[2]) +
                                 "': " + std::strerror(errno));
    }
    const io::SystemSpec spec = io::parse_system_file(argv[2]);
    if (command == "info") return cmd_info(spec);
    if (command == "dot") return cmd_dot(spec);
    if (command == "analyze") return cmd_analyze(spec, argc, argv);
    if (command == "simulate") return cmd_simulate(spec, argc, argv);
    return cmd_optimize(spec, argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
