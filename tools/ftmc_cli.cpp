// ftmc — command-line front end.
//
//   ftmc info <system.ftmc>                  model summary
//   ftmc analyze <system.ftmc>               Algorithm 1 on the candidate
//   ftmc simulate <system.ftmc> [options]    Monte-Carlo fault injection
//       --profiles=N (default 1000) --fault-prob=P (0.3) --seed=S (1)
//       --threads=N (hardware) --trace-level=responses|jobs|full (responses)
//   ftmc optimize <system.ftmc> [options]    GA design-space exploration
//       --generations=N (60) --population=N (40) --seed=S (42)
//       --seeds=A,B,... (multi-seed campaign) --threads=N (hardware)
//       --checkpoint=FILE --checkpoint-every=N --resume=FILE
//       --max-seconds=S --max-evaluations=N --retries=N
//       --no-cache --sequential-scenarios --no-dropping --power-only
//       --out=<file> --front-json=<file>
//   ftmc campaign <system.ftmc> [options]    distributed island campaign
//       everything optimize takes, plus --workers=N --worker-hosts=H:P,...
//       --worker-threads=N --migration-every=N (10) --migration-size=N (4)
//       --straggler-factor=F (3.0)
//
// All option parsing goes through cli::OptionParser (tools/cli_options.hpp):
// each subcommand registers exactly the options it reads and everything
// else is rejected with the same unknown-option error.
//
// The system file format is documented in ftmc/io/text_format.hpp; `ftmc
// optimize --out=` writes a full system + candidate file that `analyze` and
// `simulate` accept.
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cli_options.hpp"
#include "ftmc/core/eval_store.hpp"
#include "ftmc/core/evaluator.hpp"
#include "ftmc/dist/remote_executor.hpp"
#include "ftmc/dist/worker.hpp"
#include "ftmc/dse/campaign.hpp"
#include "ftmc/dse/checkpoint.hpp"
#include "ftmc/dse/ga.hpp"
#include "ftmc/io/dot_export.hpp"
#include "ftmc/io/text_format.hpp"
#include "ftmc/obs/json.hpp"
#include "ftmc/sched/holistic.hpp"
#include "ftmc/serve/reports.hpp"
#include "ftmc/serve/server.hpp"
#include "ftmc/sim/monte_carlo.hpp"
#include "ftmc/util/file_io.hpp"
#include "ftmc/util/hash.hpp"
#include "ftmc/util/log.hpp"
#include "ftmc/util/table.hpp"
#include "ftmc/util/thread_pool.hpp"

using namespace ftmc;

namespace {

int usage() {
  std::cerr <<
      "usage: ftmc <command> <system.ftmc> [options]\n"
      "commands:\n"
      "  info      print a model summary\n"
      "  dot       emit Graphviz (hardened view when a candidate exists)\n"
      "  analyze   run Algorithm 1 on the file's candidate block\n"
      "            [--threads=N]  (parallel transition scenarios)\n"
      "            [--no-warm-start] [--scenario-batch=N]\n"
      "  simulate  Monte-Carlo fault injection on the candidate\n"
      "            [--profiles=N] [--fault-prob=P] [--seed=S]\n"
      "            [--threads=N] [--trace-level=responses|jobs|full]\n"
      "  serve     long-lived daemon: load once, answer analyze/simulate/\n"
      "            evaluate requests over length-prefixed JSONL\n"
      "            (tools/serve_client.py is the reference client)\n"
      "            [--port=N] (default 0 = ephemeral) [--port-file=FILE]\n"
      "            [--stdio]  (serve fds 0/1 instead of TCP)\n"
      "            [--also=FILE,...]  (additional resident systems)\n"
      "            [--cache-dir=DIR] [--no-cache] [--max-requests=N]\n"
      "            [--max-connections=N]  (concurrent TCP sessions, def. 8)\n"
      "            [--threads=N] [--no-warm-start] [--scenario-batch=N]\n"
      "            [--access-log=FILE]  (JSONL per-request records)\n"
      "            [--slow-ms=N]  (escalate slow requests to the log)\n"
      "            [--sample-interval=MS]  (metrics sampler cadence,\n"
      "            default 1000, 0 = off) [--prom-textfile=FILE]\n"
      "  optimize  genetic design-space exploration\n"
      "            [--generations=N] [--population=N] [--seed=S]\n"
      "            [--seeds=A,B,...]  (multi-seed campaign, merged front)\n"
      "            [--threads=N] [--no-cache] [--sequential-scenarios]\n"
      "            [--no-dropping] [--power-only] [--out=FILE]\n"
      "            [--no-warm-start] [--scenario-batch=N]  (WCRT kernel;\n"
      "            throughput-only, results are bitwise identical)\n"
      "            [--telemetry-jsonl=FILE]  (per-generation stats stream)\n"
      "            [--front-json=FILE]       (final front as JSON)\n"
      "            [--max-seconds=S] [--max-evaluations=N] [--retries=N]\n"
      "            [--cache-dir=DIR]  (persistent evaluation store shared\n"
      "            across shards, resumes, and `ftmc serve`)\n"
      "  campaign  distributed island-model exploration (same options as\n"
      "            optimize, one island per --seeds entry, plus:)\n"
      "            [--workers=N]  (spawn N local `ftmc serve` workers)\n"
      "            [--worker-hosts=H:P,...]  (connect to external workers)\n"
      "            [--worker-threads=N]  (per spawned worker)\n"
      "            [--migration-every=N]  (island epoch length, default 10;\n"
      "            0 = independent shards) [--migration-size=N] (default 4)\n"
      "            [--straggler-factor=F]  (slow-island EWMA threshold)\n"
      "checkpointing (optimize/campaign; SIGINT/SIGTERM drain the in-flight\n"
      "generation, write a final snapshot, and exit 0):\n"
      "  --checkpoint=FILE     write ftmc.ckpt.v1 snapshots here\n"
      "  --checkpoint-every=N  snapshot cadence in generations (default 1)\n"
      "  --resume=FILE         continue a checkpointed run (options must\n"
      "                        match the snapshot; mismatches name the field)\n"
      "telemetry (analyze/simulate/optimize):\n"
      "  --metrics-json=FILE   write the final counter/histogram snapshot\n"
      "  --chrome-trace=FILE   record spans, write Chrome trace-event JSON\n"
      "  --quiet               suppress progress output (results only)\n";
  return 2;
}

// Shared WCRT-kernel toggles for the commands that run Algorithm 1
// (analyze/optimize).  Must run before parser.finish() so the options are
// registered.  Both toggles are throughput-only: warm-started and batched
// solves are bitwise-identical to the cold scalar path (guarded by the
// kernel fuzz harness), so they are safe to flip mid-campaign on --resume.
sched::HolisticAnalysis::Options parse_kernel_options(
    cli::OptionParser& parser) {
  sched::HolisticAnalysis::Options options;
  options.warm_start = !parser.flag("no-warm-start");
  options.scenario_batch =
      parser.size("scenario-batch", options.scenario_batch);
  return options;
}

core::Candidate require_candidate(const io::SystemSpec& spec) {
  if (!spec.candidate.has_value())
    throw std::runtime_error(
        "the system file has no candidate block; add one or run "
        "`ftmc optimize` first");
  return *spec.candidate;
}

int cmd_dot(const io::SystemSpec& spec, int argc, char** argv) {
  cli::OptionParser parser("dot", argc, argv);
  parser.flag("quiet");
  parser.finish();
  if (spec.candidate.has_value()) {
    const auto system = hardening::apply_hardening(
        spec.apps, spec.candidate->plan, spec.candidate->base_mapping,
        spec.arch.processor_count());
    io::write_dot(std::cout, spec.arch, system);
  } else {
    io::write_dot(std::cout, spec.apps);
  }
  return 0;
}

int cmd_info(const io::SystemSpec& spec, int argc, char** argv) {
  cli::OptionParser parser("info", argc, argv);
  parser.flag("quiet");
  parser.finish();
  std::cout << "platform: " << spec.arch.processor_count()
            << " processors, bandwidth " << spec.arch.bandwidth()
            << " bytes/us\n";
  util::Table table("applications");
  table.set_header({"name", "tasks", "period", "criticality",
                    "total wcet"});
  for (std::uint32_t g = 0; g < spec.apps.graph_count(); ++g) {
    const auto& graph = spec.apps.graph(model::GraphId{g});
    table.add_row({graph.name(), util::Table::cell(graph.task_count()),
                   io::format_time(graph.period()),
                   graph.droppable()
                       ? "droppable (sv " +
                             util::Table::cell(graph.service_value(), 1) + ")"
                       : "critical (f " +
                             util::Table::cell(graph.reliability_constraint(),
                                               14) +
                             ")",
                   io::format_time(graph.total_wcet())});
  }
  table.print(std::cout);
  std::cout << "hyperperiod: " << io::format_time(spec.apps.hyperperiod())
            << "\ncandidate block: "
            << (spec.candidate.has_value() ? "present" : "absent") << '\n';
  return 0;
}

int cmd_analyze(const io::SystemSpec& spec, int argc, char** argv) {
  cli::OptionParser parser("analyze", argc, argv);
  const cli::CommonOptions common = cli::CommonOptions::parse(parser);
  const sched::HolisticAnalysis backend(parse_kernel_options(parser));
  parser.finish();
  const core::Candidate candidate = require_candidate(spec);
  // Transition scenarios are independent; fan them out unless --threads=1.
  std::optional<util::ThreadPool> pool;
  core::Evaluator::Options evaluator_options;
  if (common.threads != 1) {
    pool.emplace(common.threads);
    evaluator_options.scenario_pool = &*pool;
  }
  const core::Evaluator evaluator(spec.arch, spec.apps, backend,
                                  evaluator_options);
  if (const auto error = evaluator.structural_error(candidate);
      !error.empty())
    throw std::runtime_error("candidate invalid: " + error);
  const core::Evaluation evaluation = evaluator.evaluate(candidate);

  // Rendering is shared with `ftmc serve` (byte-identical by construction).
  serve::write_analyze_report(std::cout, spec, candidate, evaluation);
  common.finish_telemetry();
  return evaluation.feasible() ? 0 : 1;
}

sim::TraceLevel parse_trace_level(const std::string& name) {
  if (name == "responses") return sim::TraceLevel::kResponses;
  if (name == "jobs") return sim::TraceLevel::kJobs;
  if (name == "full") return sim::TraceLevel::kFull;
  throw std::runtime_error("unknown --trace-level '" + name +
                           "' (expected responses, jobs, or full)");
}

int cmd_simulate(const io::SystemSpec& spec, int argc, char** argv) {
  cli::OptionParser parser("simulate", argc, argv);
  const cli::CommonOptions common = cli::CommonOptions::parse(parser);
  sim::MonteCarloOptions options;
  options.profiles = parser.size("profiles", 1000);
  const std::string fault_prob = parser.str("fault-prob", "0.3");
  options.fault_probability = parser.f64("fault-prob", 0.3);
  options.seed = parser.u64("seed", 1);
  options.threads = common.threads;
  options.trace = parse_trace_level(parser.str("trace-level", "responses"));
  parser.finish();
  const core::Candidate candidate = require_candidate(spec);
  const auto system = hardening::apply_hardening(
      spec.apps, candidate.plan, candidate.base_mapping,
      spec.arch.processor_count());
  const auto priorities = sched::assign_priorities(system.apps);
  const auto start = std::chrono::steady_clock::now();
  const auto result = sim::monte_carlo_wcrt(spec.arch, system,
                                            candidate.drop, priorities,
                                            options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Rendering is shared with `ftmc serve` (byte-identical by construction).
  serve::write_simulate_report(std::cout, system, result, options.profiles,
                               fault_prob);
  // Throughput is progress/diagnostic output, not a result: it goes through
  // the leveled logger so --quiet silences it.
  util::log_info("events processed: ", result.events_processed, " (",
                 static_cast<std::size_t>(
                     seconds > 0.0
                         ? static_cast<double>(result.events_processed) /
                               seconds
                         : 0.0),
                 " events/s, ", util::Table::cell(seconds, 3),
                 " s, trace level ", to_string(options.trace), ")");
  common.finish_telemetry();
  return 0;
}

// SIGINT/SIGTERM request a graceful drain: the GA finishes the in-flight
// generation, writes a final checkpoint, and optimize exits 0.
volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void handle_interrupt(int) { g_interrupted = 1; }

// Shared implementation of `optimize` (distributed = false) and `campaign`
// (distributed = true).  Both subcommands parse the same cli::CampaignOptions
// surface through one strict parser; `campaign` additionally reads the
// coordinator/worker flags, runs the island model by default
// (--migration-every=10), and — when --workers/--worker-hosts name a fleet —
// evaluates on remote `ftmc serve` workers through dist::RemoteExecutor.
int run_campaign(const io::SystemSpec& spec, int argc, char** argv,
                 bool distributed) {
  cli::OptionParser parser(distributed ? "campaign" : "optimize", argc, argv);
  const cli::CommonOptions common =
      cli::CommonOptions::parse(parser, /*with_checkpointing=*/true);
  const cli::CampaignOptions cli_options =
      cli::CampaignOptions::parse(parser, distributed);
  const sched::HolisticAnalysis::Options kernel_options =
      parse_kernel_options(parser);
  parser.finish();

  dse::CampaignOptions campaign_options;
  dse::GaOptions& options = campaign_options.ga;
  options.generations = cli_options.generations;
  options.population = cli_options.population;
  options.offspring = options.population;
  options.seed = cli_options.seed;
  options.threads = common.threads;
  options.cache_evaluations = !cli_options.no_cache;
  options.parallel_scenarios = !cli_options.sequential_scenarios;
  options.optimize_service = !cli_options.power_only;
  if (cli_options.no_dropping) {
    options.decoder.allow_dropping = false;
    options.evaluator.allow_dropping = false;
  }
  campaign_options.seeds = cli_options.seeds;
  campaign_options.max_seconds = cli_options.max_seconds;
  campaign_options.max_evaluations = cli_options.max_evaluations;
  campaign_options.max_retries = cli_options.max_retries;
  campaign_options.checkpoint_path = common.checkpoint_path();
  campaign_options.checkpoint_every = common.checkpoint_every;
  campaign_options.resume = !common.resume.empty();
  campaign_options.migration_every = cli_options.migration_every;
  campaign_options.migration_size = cli_options.migration_size;
  campaign_options.straggler_factor = cli_options.straggler_factor;
  const std::string jsonl_path = cli_options.telemetry_jsonl;
  const std::string out_path = cli_options.out;
  const std::string front_path = cli_options.front_json;
  const std::string cache_dir = cli_options.cache_dir;

  // Worker fleet: spawn local `ftmc serve` processes and/or connect to
  // external ones, then evaluate every memo miss remotely.  Workers re-run
  // the same content-seeded decode, so the campaign trajectory — and the
  // final front — is bitwise identical to the in-process run.
  std::optional<dist::WorkerFleet> fleet;
  if (distributed &&
      (cli_options.workers > 0 || !cli_options.worker_hosts.empty())) {
    dist::WorkerFleetOptions fleet_options;
    fleet_options.system_path = argv[2];
    fleet_options.spawn = cli_options.workers;
    fleet_options.hosts = cli_options.worker_hosts;
    fleet_options.worker_threads = cli_options.worker_threads;
    fleet_options.cache_dir = cache_dir;
    fleet.emplace(std::move(fleet_options));
    util::log_info("worker fleet ready: ", fleet->size(), " worker(s)");
    const std::string system_path = argv[2];
    const std::vector<std::uint64_t> island_seeds =
        cli_options.seeds.empty()
            ? std::vector<std::uint64_t>{cli_options.seed}
            : cli_options.seeds;
    campaign_options.executor_factory = [&fleet, system_path,
                                         island_seeds](std::size_t island) {
      return std::unique_ptr<dse::Executor>(
          std::make_unique<dist::RemoteExecutor>(
              *fleet, fleet->assign(island), system_path,
              island_seeds[island % island_seeds.size()]));
    };
    // Each island drives its own worker; running them concurrently is what
    // buys the distributed speedup (results are island-indexed, so the
    // merged front does not depend on completion order).
    campaign_options.parallel_islands = true;
  }

  // Persistent L2 evaluation store: one store (per system, keyed by the
  // file's content digest) shared by every campaign shard, every resume,
  // and any `ftmc serve` daemon pointed at the same --cache-dir.
  std::optional<core::EvalStore> store;
  if (!cache_dir.empty()) {
    store.emplace(core::store_directory(
        cache_dir, util::fnv1a_bytes(util::read_file(argv[2]))));
    options.evaluator.store = &*store;
    util::log_info("evaluation store at ", store->directory(), " (",
                   store->stats().records, " records)");
  }

  // Per-generation telemetry stream: one JSON object per line, written as
  // each generation completes so a run can be watched (or post-processed)
  // while it is still going.  On resume the restored generations are
  // replayed first, so the stream always covers the whole run.
  std::ofstream jsonl;
  if (!jsonl_path.empty()) {
    jsonl.open(jsonl_path);
    if (!jsonl)
      throw std::runtime_error("cannot write '" + jsonl_path + "': " +
                               std::strerror(errno));
  }
  const bool multi_seed = campaign_options.seeds.size() > 1;
  campaign_options.on_generation = [&](std::size_t shard,
                                       const dse::GenerationStats& stats) {
    if (jsonl.is_open()) {
      obs::Json line = obs::Json::object();
      line.set("shard", shard)
          .set("generation", stats.generation)
          .set("front_size", stats.feasible_in_archive)
          .set("best_feasible_power", stats.best_feasible_power)
          .set("evaluations", stats.evaluations)
          .set("cache_hits", stats.cache_hits)
          .set("cache_misses", stats.cache_misses)
          .set("cache_hit_rate", stats.cache_hit_rate)
          .set("scenarios_analyzed", stats.scenarios_analyzed)
          .set("scenario_solves", stats.scenario_solves)
          .set("scenarios_per_second", stats.scenarios_per_second)
          .set("evaluation_seconds", stats.evaluation_seconds)
          .set("eval_p50_us", stats.eval_p50_us)
          .set("eval_p95_us", stats.eval_p95_us)
          .set("eval_max_us", stats.eval_max_us);
      jsonl << line << '\n' << std::flush;
    }
    if (stats.generation % 10 == 0)
      util::log_info(multi_seed ? "shard " + std::to_string(shard) + ", " : "",
                     "generation ", stats.generation, ", best power ",
                     stats.best_feasible_power, " mW, cache hit rate ",
                     static_cast<int>(stats.cache_hit_rate * 100.0 + 0.5),
                     "%, ",
                     static_cast<std::size_t>(stats.scenarios_per_second),
                     " scenarios/s");
  };

  g_interrupted = 0;
  campaign_options.stop_requested = [] { return g_interrupted != 0; };
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);

  const sched::HolisticAnalysis backend(kernel_options);
  const dse::Campaign campaign(spec.arch, spec.apps, backend);
  const dse::CampaignResult result = campaign.run(campaign_options);

  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  for (std::size_t shard = 0; shard < result.shards.size(); ++shard) {
    const auto& cache = result.shards[shard].result.cache;
    util::log_info(multi_seed ? "shard " + std::to_string(shard) + " " : "",
                   "evaluation cache: ", cache.hits, " hits / ",
                   cache.lookups(), " lookups (",
                   static_cast<int>(cache.hit_rate() * 100.0 + 0.5), "%), ",
                   cache.evictions, " evictions");
  }
  if (store.has_value()) {
    const core::EvalStoreStats s = store->stats();
    util::log_info("evaluation store: ", s.hits, " hits / ",
                   s.hits + s.misses, " lookups, ", s.appends,
                   " appends, ", s.records, " records");
  }
  if (result.migration_epochs > 0)
    util::log_info("island migration: ", result.migration_epochs,
                   " barrier(s), ", result.migrants, " migrant(s)");

  if (!front_path.empty()) {
    // Deterministic final-front artifact (the kill-and-resume CI job diffs
    // this against an uninterrupted run; no timestamps, no throughput).
    obs::Json front = obs::Json::array();
    for (const auto& individual : result.front)
      front.push(obs::Json::object()
                     .set("power", individual.evaluation.power)
                     .set("service", individual.evaluation.service));
    obs::Json doc = obs::Json::object();
    doc.set("evaluations", result.evaluations)
        .set("front", std::move(front));
    std::ofstream out(front_path);
    if (!out)
      throw std::runtime_error("cannot write '" + front_path + "': " +
                               std::strerror(errno));
    out << doc << '\n';
  }

  if (result.interrupted || result.budget_exhausted) {
    const std::string reason =
        result.interrupted ? "interrupted" : "budget exhausted";
    if (!campaign_options.checkpoint_path.empty())
      std::cout << reason << " after " << result.evaluations
                << " evaluations; resumable checkpoint(s) at "
                << campaign_options.checkpoint_path
                << " (rerun with --resume=" << campaign_options.checkpoint_path
                << ")\n";
    else
      std::cout << reason << " after " << result.evaluations
                << " evaluations (no --checkpoint given, progress "
                   "discarded)\n";
    common.finish_telemetry();
    return 0;
  }

  if (result.front.empty()) {
    std::cout << "no feasible design found (" << result.evaluations
              << " evaluations) — raise --generations/--population\n";
    common.finish_telemetry();
    return 1;
  }
  util::Table table("Pareto-optimal designs");
  table.set_header({"power [mW]", "service"});
  const dse::Individual* best = &result.front.front();
  for (const auto& individual : result.front) {
    table.add_row({util::Table::cell(individual.evaluation.power, 2),
                   util::Table::cell(individual.evaluation.service, 1)});
    if (individual.evaluation.power < best->evaluation.power)
      best = &individual;
  }
  table.print(std::cout);
  std::cout << result.evaluations << " evaluations\n";

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot write '" + out_path + "'");
    io::write_system(out, spec.arch, spec.apps, &best->candidate);
    std::cout << "lowest-power design written to " << out_path << '\n';
  }
  common.finish_telemetry();
  return 0;
}

int cmd_optimize(const io::SystemSpec& spec, int argc, char** argv) {
  return run_campaign(spec, argc, argv, /*distributed=*/false);
}

int cmd_campaign(const io::SystemSpec& spec, int argc, char** argv) {
  return run_campaign(spec, argc, argv, /*distributed=*/true);
}

// `ftmc serve`: load the system(s) once, keep evaluator/simulator state
// resident, answer requests over the framed JSONL protocol.  SIGINT/SIGTERM
// drain gracefully: sigaction without SA_RESTART so the blocking
// accept/read returns EINTR and the loop re-checks stop_requested.
int cmd_serve(int argc, char** argv) {
  cli::OptionParser parser("serve", argc, argv);
  const cli::CommonOptions common = cli::CommonOptions::parse(parser);

  ftmc::serve::ServeOptions options;
  options.system_paths.emplace_back(argv[2]);
  for (std::string& path : parser.str_list("also"))
    options.system_paths.push_back(std::move(path));
  options.threads = common.threads;
  options.cache_dir = parser.str("cache-dir", "");
  options.enable_cache = !parser.flag("no-cache");
  options.max_requests = parser.size("max-requests", 0);
  options.max_connections = parser.size("max-connections", 8);
  options.access_log = parser.str("access-log", "");
  options.slow_ms = parser.size("slow-ms", 0);
  options.sample_interval_ms = parser.size("sample-interval", 1000);
  options.prom_textfile = parser.str("prom-textfile", "");
  options.kernel = parse_kernel_options(parser);
  const bool stdio = parser.flag("stdio");
  const auto port = static_cast<std::uint16_t>(parser.u64("port", 0));
  const std::string port_file = parser.str("port-file", "");
  parser.finish();

  g_interrupted = 0;
  options.stop_requested = [] { return g_interrupted != 0; };
  struct sigaction action {};
  action.sa_handler = handle_interrupt;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking reads must see EINTR
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  // A client hanging up mid-response must surface as a write error on that
  // connection, not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  ftmc::serve::Server server(std::move(options));
  const int code =
      stdio ? server.serve_fd(0, 1) : server.serve_tcp(port, port_file);
  common.finish_telemetry();
  return code;
}

bool has_flag(int argc, char** argv, const char* name) {
  const std::string wanted = std::string("--") + name;
  for (int i = 3; i < argc; ++i)
    if (wanted == argv[i]) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const bool known = command == "info" || command == "dot" ||
                     command == "analyze" || command == "simulate" ||
                     command == "optimize" || command == "campaign" ||
                     command == "serve";
  if (!known) {
    std::cerr << "error: unknown command '" << command << "'\n";
    return usage();
  }
  // A known command with no file is a targeted complaint, not a usage dump:
  // the user got the command right and only needs the missing piece.
  if (argc < 3) {
    std::cerr << "error: " << command
              << ": missing <system.ftmc> argument\n";
    return 2;
  }
  // Progress goes through the leveled logger; results go to stdout.
  util::Logger::instance().set_level(has_flag(argc, argv, "quiet")
                                         ? util::LogLevel::kWarn
                                         : util::LogLevel::kInfo);
  try {
    {
      // Probe the system file up front so a bad path names the file instead
      // of surfacing as a parse error (or worse, a generic usage message).
      std::ifstream probe(argv[2]);
      if (!probe)
        throw std::runtime_error("cannot read system file '" +
                                 std::string(argv[2]) +
                                 "': " + std::strerror(errno));
    }
    // serve parses (and keeps resident) its own systems — possibly several.
    if (command == "serve") return cmd_serve(argc, argv);
    const io::SystemSpec spec = io::parse_system_file(argv[2]);
    if (command == "info") return cmd_info(spec, argc, argv);
    if (command == "dot") return cmd_dot(spec, argc, argv);
    if (command == "analyze") return cmd_analyze(spec, argc, argv);
    if (command == "simulate") return cmd_simulate(spec, argc, argv);
    if (command == "campaign") return cmd_campaign(spec, argc, argv);
    return cmd_optimize(spec, argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
