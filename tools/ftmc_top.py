#!/usr/bin/env python3
"""Live monitor for one or many `ftmc serve` daemons.

Polls each daemon's `metrics` and `health` methods over the length-prefixed
JSONL protocol and renders a line per daemon with the windowed request rate,
per-method p50/p95 latency, inflight requests, session count, and cache hit
rate.  Rates and quantiles are computed CLIENT-side from deltas between
successive `ftmc.metrics.v1` snapshots, so the monitor works even against a
daemon running with --sample-interval=0 (serve-side sampling off).

Latency quantiles reimplement MetricsSnapshot::quantile (log-linear
interpolation within the registry's power-of-two histogram buckets; see
src/ftmc/obs/metrics.cpp), applied to the per-interval bucket increase of
each serve.latency.<method> histogram.

Targets are TCP endpoints: bare ports, host:port pairs, or --port-file
rendezvous files written by `ftmc serve --port-file` (repeatable; mix
freely).  --interval sets the poll cadence, --count bounds the number of
ticks (0 = run until interrupted) — CI smokes with --count 1.

    tools/ftmc_top.py 7070 otherhost:7070 --port-file /tmp/serve.port
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from pathlib import Path

METHODS = ("ping", "systems", "stats", "analyze", "evaluate", "simulate",
           "batch", "metrics", "health", "shutdown", "other")


def send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(str(len(payload)).encode() + b"\n" + payload)


def recv_frame(sock: socket.socket) -> bytes:
    length_line = b""
    while not length_line.endswith(b"\n"):
        byte = sock.recv(1)
        if not byte:
            raise ConnectionError("EOF while reading frame length")
        length_line += byte
    length = int(length_line.strip())
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        if not chunk:
            raise ConnectionError("EOF mid-frame")
        payload += chunk
    return payload


def call(sock: socket.socket, request: dict) -> dict:
    # The server speaks ftmc.rpc.v1 and rejects unversioned requests.
    request.setdefault("v", "ftmc.rpc.v1")
    send_frame(sock, json.dumps(request).encode())
    return json.loads(recv_frame(sock))


def quantile(buckets: list[int], count: int, q: float) -> float:
    """MetricsSnapshot::quantile in Python: rank q*(count-1) located in the
    log2 buckets, log-linearly interpolated inside the hit bucket (bucket b
    covers [2^(b-1), 2^b); bucket 0 is the literal sample 0)."""
    if count <= 0:
        return 0.0
    rank = max(0.0, min(1.0, q)) * (count - 1)
    below = 0.0
    for b, bucket_count in enumerate(buckets):
        if bucket_count == 0:
            continue
        if rank < below + bucket_count or b + 1 == len(buckets):
            if b == 0:
                return 0.0
            position = max(0.0, min(1.0, (rank - below) / bucket_count))
            return 2.0 ** (b - 1 + position)
        below += bucket_count
    return 0.0


def hist_delta(current: dict, previous: dict) -> tuple[int, list[int]]:
    """Per-bucket increase of one histogram between two snapshots."""
    cur_buckets = current.get("buckets", [])
    prev_buckets = previous.get("buckets", [])
    width = max(len(cur_buckets), len(prev_buckets))
    buckets = []
    for b in range(width):
        cur = cur_buckets[b] if b < len(cur_buckets) else 0
        prev = prev_buckets[b] if b < len(prev_buckets) else 0
        buckets.append(max(0, cur - prev))
    count = max(0, current.get("count", 0) - previous.get("count", 0))
    return count, buckets


class Daemon:
    """One monitored endpoint: a persistent connection plus the previous
    snapshot, so every tick reports the increase since the last one."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.sock: socket.socket | None = None
        self.prev: dict | None = None
        self.prev_at = 0.0

    @property
    def label(self) -> str:
        return f"{self.host}:{self.port}"

    def connect(self) -> socket.socket:
        if self.sock is None:
            self.sock = socket.create_connection((self.host, self.port),
                                                 timeout=10)
        return self.sock

    def drop(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            finally:
                self.sock = None
        self.prev = None

    def tick(self) -> str:
        try:
            sock = self.connect()
            metrics = call(sock, {"id": "top", "method": "metrics"})
            health = call(sock, {"id": "top", "method": "health"})
        except (OSError, ConnectionError, ValueError) as error:
            self.drop()
            return f"{self.label}: unreachable ({error})"
        if metrics.get("ok") is not True or health.get("ok") is not True:
            return f"{self.label}: refused metrics/health"
        snapshot = metrics["result"]["metrics"]
        status = health["result"]
        now = time.monotonic()
        line = self.render(snapshot, status,
                           now - self.prev_at if self.prev else 0.0)
        self.prev = snapshot
        self.prev_at = now
        return line

    def render(self, snapshot: dict, status: dict, dt: float) -> str:
        counters = snapshot.get("counters", {})
        histograms = snapshot.get("histograms", {})
        prev_counters = (self.prev or {}).get("counters", {})
        prev_histograms = (self.prev or {}).get("histograms", {})

        def rate(name: str) -> float:
            if dt <= 0:
                return 0.0
            return max(0, counters.get(name, 0)
                       - prev_counters.get(name, 0)) / dt

        hits = max(0, counters.get("cache.eval.hits", 0)
                   - prev_counters.get("cache.eval.hits", 0))
        misses = max(0, counters.get("cache.eval.misses", 0)
                     - prev_counters.get("cache.eval.misses", 0))
        hit_rate = hits / (hits + misses) if hits + misses else 0.0

        parts = [
            f"{self.label}: {status.get('status', '?')}",
            f"up {status.get('uptime_s', 0.0):.0f}s",
            f"{rate('serve.requests'):.1f} req/s",
            f"inflight {status.get('inflight', 0)}",
            f"conns {status.get('connections', 0)}",
            f"cache {hit_rate * 100.0:.0f}%",
        ]
        latencies = []
        for method in METHODS:
            name = f"serve.latency.{method}"
            if name not in histograms:
                continue
            count, buckets = hist_delta(histograms[name],
                                        prev_histograms.get(name, {}))
            if count == 0:
                continue
            p50 = quantile(buckets, count, 0.50)
            p95 = quantile(buckets, count, 0.95)
            latencies.append(
                f"{method} n={count} p50={p50 / 1e3:.2f}ms"
                f" p95={p95 / 1e3:.2f}ms")
        if latencies:
            parts.append("| " + "  ".join(latencies))
        return "  ".join(parts)


def parse_target(raw: str) -> tuple[str, int]:
    host, sep, port = raw.rpartition(":")
    if not sep:
        return "127.0.0.1", int(raw)
    return host, int(port)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("targets", nargs="*",
                        help="daemon endpoints: PORT or HOST:PORT")
    parser.add_argument("--port-file", action="append", default=[],
                        help="read a port from an `ftmc serve --port-file`"
                             " rendezvous file (repeatable)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls (default 2)")
    parser.add_argument("--count", type=int, default=0,
                        help="stop after N ticks (0 = run until ^C)")
    args = parser.parse_args()

    daemons: list[Daemon] = []
    try:
        for raw in args.targets:
            daemons.append(Daemon(*parse_target(raw)))
        for path in args.port_file:
            port = int(Path(path).read_text().strip())
            daemons.append(Daemon("127.0.0.1", port))
    except (OSError, ValueError) as error:
        print(f"ftmc_top: bad target: {error}", file=sys.stderr)
        return 2
    if not daemons:
        parser.error("no daemons; pass PORT/HOST:PORT targets or --port-file")

    ticks = 0
    unreachable = 0
    try:
        while True:
            unreachable = 0
            lines = [daemon.tick() for daemon in daemons]
            for line in lines:
                print(line, flush=True)
                if "unreachable" in line:
                    unreachable += 1
            ticks += 1
            if args.count and ticks >= args.count:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    # Non-zero when the final tick could not reach every daemon, so CI can
    # assert liveness with --count 1.
    return 1 if unreachable else 0


if __name__ == "__main__":
    sys.exit(main())
