#!/usr/bin/env python3
"""Reference client for the `ftmc serve` protocol.

One frame = the payload's byte length as ASCII decimal, a single newline,
then exactly that many payload bytes (a JSON document).  The same framing
runs over TCP and stdio; this client speaks TCP.

Modes (one required):

  --request JSON        send one request to a running daemon (--port or
                        --port-file) and print the response JSON.
  --smoke N             spawn a daemon over --system (needs --ftmc), send N
                        mixed requests (ping / systems / stats / analyze /
                        evaluate / simulate round-robin), require ok:true on
                        every one, then ask it to shut down and require exit
                        code 0.  With --diff, the analyze and simulate
                        rendered outputs are additionally byte-compared
                        against one-shot `ftmc analyze` / `ftmc simulate`
                        runs of the same binary — the serve responses must
                        be bitwise identical to the CLI.

With --watch (load mode), one extra connection polls the daemon's `metrics`
method while the load runs and prints a live windowed rate line (req/s and
cache hit rate from the serve-side sampler).  --access-log / --slow-ms /
--sample-interval / --prom-textfile forward the matching daemon flags so CI
can validate the observability artifacts afterwards.

With --concurrency N (smoke mode), N client threads each open their own
connection and send the N_req mixed requests concurrently — including
periodic `batch` requests and `evaluate` calls carrying the system's own
candidate block inline via params.candidate (which must answer identically
to the resident-candidate evaluate).  Per-request latencies are aggregated
into p50/p95 and an overall request rate; --diff byte-compares exactly as
in the serial mode, so concurrency must not change a single output byte.

CI runs `--smoke 50 --diff` serially and `--smoke 16 --concurrency 8
--diff` against the shipped demo system (see .github/workflows/ci.yml);
tests/test_serve.cpp pins the same byte-identity in-process.
"""

from __future__ import annotations

import argparse
import json
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

SIMULATE_PROFILES = 200
SIMULATE_FAULT_PROB = "0.25"
SIMULATE_SEED = 9


def send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(str(len(payload)).encode() + b"\n" + payload)


def recv_frame(sock: socket.socket) -> bytes:
    length_line = b""
    while not length_line.endswith(b"\n"):
        byte = sock.recv(1)
        if not byte:
            raise ConnectionError("EOF while reading frame length")
        length_line += byte
    length = int(length_line.strip())
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        if not chunk:
            raise ConnectionError("EOF mid-frame")
        payload += chunk
    return payload


RPC_VERSION = "ftmc.rpc.v1"


def call(sock: socket.socket, request: dict) -> dict:
    # Every request carries the protocol version; the server rejects
    # unversioned frames with a structured version_mismatch error.
    request.setdefault("v", RPC_VERSION)
    send_frame(sock, json.dumps(request).encode())
    return json.loads(recv_frame(sock))


def error_text(response: dict) -> str:
    """Human-readable form of a structured {code, message, detail} error."""
    error = response.get("error")
    if not isinstance(error, dict):
        return str(error)
    text = f"{error.get('code', '?')}: {error.get('message', '')}"
    if error.get("detail"):
        text += f" ({error['detail']})"
    return text


def wait_for_port(port_file: Path, daemon: subprocess.Popen,
                  timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if daemon.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with code {daemon.returncode}"
            )
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise RuntimeError(f"daemon never wrote {port_file}")


def smoke_request(i: int, system: str) -> dict:
    method = ("ping", "systems", "stats", "analyze", "evaluate",
              "simulate")[i % 6]
    request: dict = {"id": i, "method": method}
    if method == "simulate":
        # Pinned parameters so --diff can replay the identical CLI run.
        request["params"] = {
            "profiles": SIMULATE_PROFILES,
            "fault_prob": SIMULATE_FAULT_PROB,
            "seed": SIMULATE_SEED,
        }
    if method in ("analyze", "evaluate", "simulate"):
        request["system"] = system
    return request


def cli_reference(ftmc: str, system: str, method: str) -> str:
    if method == "analyze":
        argv = [ftmc, "analyze", system]
    else:
        argv = [
            ftmc, "simulate", system,
            f"--profiles={SIMULATE_PROFILES}",
            f"--fault-prob={SIMULATE_FAULT_PROB}",
            f"--seed={SIMULATE_SEED}",
        ]
    # analyze exits 1 on an infeasible candidate; that is still a valid
    # reference rendering, so don't check the exit code here.
    run = subprocess.run(argv, capture_output=True, text=True)
    return run.stdout


def extract_candidate_block(system: str) -> str | None:
    """The `candidate { ... }` block of a system file, verbatim (brace
    counting; the text format has no braces inside string literals)."""
    text = Path(system).read_text()
    start = text.find("candidate")
    if start < 0:
        return None
    depth = 0
    for pos in range(start, len(text)):
        if text[pos] == "{":
            depth += 1
        elif text[pos] == "}":
            depth -= 1
            if depth == 0:
                return text[start:pos + 1]
    return None


def check_response(request: dict, response: dict,
                   references: dict[str, str], errors: list[str]) -> None:
    if response.get("ok") is not True:
        errors.append(f"request {request['id']} ({request['method']})"
                      f" failed: {error_text(response)}")
        return
    if response.get("id") != request["id"]:
        errors.append(f"request {request['id']}: id echoed as"
                      f" {response.get('id')!r}")
    method = request["method"]
    if method in references and "candidate" not in request.get("params", {}):
        served = response["result"].get("output", "")
        if served != references[method]:
            errors.append(f"request {request['id']}: {method} output"
                          f" differs from one-shot CLI ({len(served)} vs"
                          f" {len(references[method])} bytes)")


def load_worker(worker: int, port: int, count: int, system: str,
                references: dict[str, str], candidate_block: str | None,
                resident_eval: dict | None, latencies: list[float],
                errors: list[str]) -> None:
    """One load connection: `count` mixed requests, some pipelined in pairs,
    every latency recorded.  Appends human-readable problems to `errors`."""
    try:
        with socket.create_connection(("127.0.0.1", port)) as sock:
            for i in range(count):
                rid = f"w{worker}-{i}"
                kind = i % 8
                if kind == 6:
                    # Batch: three sub-requests fanned out server-side.
                    subs = [smoke_request(j, system) for j in range(3, 6)]
                    for j, sub in enumerate(subs):
                        sub["id"] = f"{rid}-b{j}"
                    request = {"id": rid, "method": "batch",
                               "params": {"requests": subs}}
                    begin = time.monotonic()
                    response = call(sock, request)
                    latencies.append(time.monotonic() - begin)
                    if response.get("ok") is not True:
                        errors.append(f"batch {rid} failed: {response}")
                        continue
                    results = response["result"].get("results", [])
                    if len(results) != len(subs):
                        errors.append(f"batch {rid}: {len(results)} results"
                                      f" for {len(subs)} requests")
                        continue
                    for sub, sub_response in zip(subs, results):
                        check_response(sub, sub_response, references, errors)
                elif kind == 7 and candidate_block is not None:
                    # Inline-candidate evaluate: must answer exactly like
                    # the resident-candidate evaluate (the candidate IS the
                    # resident one, re-sent as text).
                    request = {"id": rid, "method": "evaluate",
                               "system": system,
                               "params": {"candidate": candidate_block}}
                    begin = time.monotonic()
                    response = call(sock, request)
                    latencies.append(time.monotonic() - begin)
                    check_response(request, response, references, errors)
                    if response.get("ok") is True and resident_eval:
                        got = dict(response["result"])
                        got.pop("cache_hit", None)
                        if got != resident_eval:
                            errors.append(f"request {rid}: inline-candidate"
                                          " evaluate differs from resident"
                                          " evaluate")
                else:
                    request = smoke_request(i, system)
                    request["id"] = rid
                    begin = time.monotonic()
                    response = call(sock, request)
                    latencies.append(time.monotonic() - begin)
                    check_response(request, response, references, errors)
    except (OSError, ConnectionError, ValueError) as error:
        errors.append(f"worker {worker}: {error!r}")


def percentile(sorted_values: list[float], fraction: float) -> float:
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def watch_worker(port: int, stop: threading.Event) -> None:
    """Live rate line for load mode: polls the daemon's `metrics` method on
    its own connection and prints the windowed request rate the serve-side
    sampler reports (requires the daemon's sampler, on by default)."""
    try:
        with socket.create_connection(("127.0.0.1", port)) as sock:
            while not stop.wait(0.5):
                response = call(sock, {"id": "watch", "method": "metrics"})
                if response.get("ok") is not True:
                    return
                window = response["result"].get("window")
                if not window or not window.get("samples"):
                    continue
                rates = window.get("rates", {})
                print(f"watch: {rates.get('requests_per_s', 0.0):.1f} req/s,"
                      f" cache hit rate"
                      f" {window.get('cache_hit_rate', 0.0):.2f} over"
                      f" {window.get('seconds', 0.0):.1f}s", flush=True)
    except (OSError, ConnectionError, ValueError):
        pass  # daemon draining mid-poll; the load result is what matters


def run_load(args: argparse.Namespace, port: int,
             references: dict[str, str]) -> int:
    candidate_block = extract_candidate_block(args.system)
    resident_eval = None
    with socket.create_connection(("127.0.0.1", port)) as sock:
        response = call(sock, {"id": "ref", "method": "evaluate",
                               "system": args.system})
        if response.get("ok") is True:
            resident_eval = dict(response["result"])
            resident_eval.pop("cache_hit", None)
    per_worker: list[tuple[list[float], list[str]]] = []
    threads = []
    watcher = None
    watch_stop = threading.Event()
    if args.watch:
        watcher = threading.Thread(target=watch_worker,
                                   args=(port, watch_stop))
        watcher.start()
    begin = time.monotonic()
    for worker in range(args.concurrency):
        latencies: list[float] = []
        errors: list[str] = []
        per_worker.append((latencies, errors))
        threads.append(threading.Thread(
            target=load_worker,
            args=(worker, port, args.smoke, args.system, references,
                  candidate_block, resident_eval, latencies, errors)))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - begin
    if watcher is not None:
        watch_stop.set()
        watcher.join()
    failures = 0
    for _, errors in per_worker:
        for message in errors:
            print(message, file=sys.stderr)
            failures += 1
    all_latencies = sorted(
        value for latencies, _ in per_worker for value in latencies)
    if not all_latencies:
        print("load: no requests completed", file=sys.stderr)
        return failures + 1
    rate = len(all_latencies) / elapsed if elapsed > 0 else 0.0
    print(f"serve_client: {len(all_latencies)} requests over"
          f" {args.concurrency} connections in {elapsed:.2f}s"
          f" ({rate:.0f} req/s, p50"
          f" {percentile(all_latencies, 0.50) * 1e3:.1f}ms, p95"
          f" {percentile(all_latencies, 0.95) * 1e3:.1f}ms)"
          + (" — outputs byte-identical to CLI" if args.diff else ""))
    return failures


def run_smoke(args: argparse.Namespace) -> int:
    port_file = Path(tempfile.mkdtemp(prefix="ftmc_serve_")) / "port"
    argv = [args.ftmc, "serve", args.system, "--port=0",
            f"--port-file={port_file}",
            f"--max-connections={max(args.concurrency + 1, 8)}"]
    if args.cache_dir:
        argv.append(f"--cache-dir={args.cache_dir}")
    if args.metrics_json:
        argv.append(f"--metrics-json={args.metrics_json}")
    if args.access_log:
        argv.append(f"--access-log={args.access_log}")
    if args.slow_ms is not None:
        argv.append(f"--slow-ms={args.slow_ms}")
    if args.sample_interval is not None:
        argv.append(f"--sample-interval={args.sample_interval}")
    if args.prom_textfile:
        argv.append(f"--prom-textfile={args.prom_textfile}")
    daemon = subprocess.Popen(argv)
    try:
        port = wait_for_port(port_file, daemon)
        references = {
            method: cli_reference(args.ftmc, args.system, method)
            for method in ("analyze", "simulate")
        } if args.diff else {}
        if args.concurrency > 1:
            failures = run_load(args, port, references)
            with socket.create_connection(("127.0.0.1", port)) as sock:
                response = call(sock, {"id": "bye", "method": "shutdown"})
                if response.get("ok") is not True:
                    print(f"shutdown refused: {response}", file=sys.stderr)
                    failures += 1
            code = daemon.wait(timeout=30)
            if code != 0:
                print(f"daemon exited with code {code}", file=sys.stderr)
                failures += 1
            return 1 if failures else 0
        failures = 0
        with socket.create_connection(("127.0.0.1", port)) as sock:
            for i in range(args.smoke):
                request = smoke_request(i, args.system)
                response = call(sock, request)
                if response.get("ok") is not True:
                    print(f"request {i} ({request['method']}) failed:"
                          f" {error_text(response)}", file=sys.stderr)
                    failures += 1
                    continue
                if response.get("id") != i:
                    print(f"request {i}: id echoed as"
                          f" {response.get('id')!r}", file=sys.stderr)
                    failures += 1
                method = request["method"]
                if method in references:
                    served = response["result"].get("output", "")
                    if served != references[method]:
                        print(f"request {i}: {method} output differs from"
                              f" one-shot CLI ({len(served)} vs"
                              f" {len(references[method])} bytes)",
                              file=sys.stderr)
                        failures += 1
            response = call(sock, {"id": "bye", "method": "shutdown"})
            if response.get("ok") is not True:
                print(f"shutdown refused: {response}", file=sys.stderr)
                failures += 1
        code = daemon.wait(timeout=30)
        if code != 0:
            print(f"daemon exited with code {code}", file=sys.stderr)
            failures += 1
        if failures == 0:
            checked = " (analyze/simulate byte-identical to CLI)" \
                if args.diff else ""
            print(f"serve_client: {args.smoke} requests OK{checked}")
        return 1 if failures else 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


def run_single(args: argparse.Namespace) -> int:
    port = args.port
    if port is None:
        if not args.port_file:
            print("--request needs --port or --port-file", file=sys.stderr)
            return 2
        port = int(Path(args.port_file).read_text().strip())
    with socket.create_connection(("127.0.0.1", port)) as sock:
        response = call(sock, json.loads(args.request))
    print(json.dumps(response, indent=2))
    return 0 if response.get("ok") is True else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--request", help="one JSON request to send")
    parser.add_argument("--port", type=int)
    parser.add_argument("--port-file")
    parser.add_argument("--smoke", type=int,
                        help="spawn a daemon and send N mixed requests")
    parser.add_argument("--concurrency", type=int, default=1,
                        help="client connections in smoke mode (each sends"
                             " N requests; reports req/s and p50/p95)")
    parser.add_argument("--diff", action="store_true",
                        help="byte-compare analyze/simulate vs the CLI")
    parser.add_argument("--ftmc", help="path to the ftmc binary (smoke)")
    parser.add_argument("--system", help="system file to serve (smoke)")
    parser.add_argument("--cache-dir", help="persistent store root (smoke)")
    parser.add_argument("--metrics-json",
                        help="daemon --metrics-json path (smoke)")
    parser.add_argument("--access-log",
                        help="daemon --access-log path (smoke)")
    parser.add_argument("--slow-ms", type=int,
                        help="daemon --slow-ms threshold (smoke)")
    parser.add_argument("--sample-interval", type=int,
                        help="daemon --sample-interval in ms (smoke)")
    parser.add_argument("--prom-textfile",
                        help="daemon --prom-textfile path (smoke)")
    parser.add_argument("--watch", action="store_true",
                        help="poll `metrics` during load mode and print a"
                             " live windowed rate line")
    args = parser.parse_args()
    if args.smoke is not None:
        if not args.ftmc or not args.system:
            parser.error("--smoke requires --ftmc and --system")
        return run_smoke(args)
    if args.request:
        return run_single(args)
    parser.error("pass --smoke N or --request JSON")
    return 2


if __name__ == "__main__":
    sys.exit(main())
