#!/usr/bin/env python3
"""Reference client for the `ftmc serve` protocol.

One frame = the payload's byte length as ASCII decimal, a single newline,
then exactly that many payload bytes (a JSON document).  The same framing
runs over TCP and stdio; this client speaks TCP.

Modes (one required):

  --request JSON        send one request to a running daemon (--port or
                        --port-file) and print the response JSON.
  --smoke N             spawn a daemon over --system (needs --ftmc), send N
                        mixed requests (ping / systems / stats / analyze /
                        evaluate / simulate round-robin), require ok:true on
                        every one, then ask it to shut down and require exit
                        code 0.  With --diff, the analyze and simulate
                        rendered outputs are additionally byte-compared
                        against one-shot `ftmc analyze` / `ftmc simulate`
                        runs of the same binary — the serve responses must
                        be bitwise identical to the CLI.

CI runs `--smoke 50 --diff` against the shipped demo system (see
.github/workflows/ci.yml); tests/test_serve.cpp pins the same byte-identity
in-process.
"""

from __future__ import annotations

import argparse
import json
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SIMULATE_PROFILES = 200
SIMULATE_FAULT_PROB = "0.25"
SIMULATE_SEED = 9


def send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(str(len(payload)).encode() + b"\n" + payload)


def recv_frame(sock: socket.socket) -> bytes:
    length_line = b""
    while not length_line.endswith(b"\n"):
        byte = sock.recv(1)
        if not byte:
            raise ConnectionError("EOF while reading frame length")
        length_line += byte
    length = int(length_line.strip())
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        if not chunk:
            raise ConnectionError("EOF mid-frame")
        payload += chunk
    return payload


def call(sock: socket.socket, request: dict) -> dict:
    send_frame(sock, json.dumps(request).encode())
    return json.loads(recv_frame(sock))


def wait_for_port(port_file: Path, daemon: subprocess.Popen,
                  timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if daemon.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with code {daemon.returncode}"
            )
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise RuntimeError(f"daemon never wrote {port_file}")


def smoke_request(i: int, system: str) -> dict:
    method = ("ping", "systems", "stats", "analyze", "evaluate",
              "simulate")[i % 6]
    request: dict = {"id": i, "method": method}
    if method == "simulate":
        # Pinned parameters so --diff can replay the identical CLI run.
        request["params"] = {
            "profiles": SIMULATE_PROFILES,
            "fault_prob": SIMULATE_FAULT_PROB,
            "seed": SIMULATE_SEED,
        }
    if method in ("analyze", "evaluate", "simulate"):
        request["system"] = system
    return request


def cli_reference(ftmc: str, system: str, method: str) -> str:
    if method == "analyze":
        argv = [ftmc, "analyze", system]
    else:
        argv = [
            ftmc, "simulate", system,
            f"--profiles={SIMULATE_PROFILES}",
            f"--fault-prob={SIMULATE_FAULT_PROB}",
            f"--seed={SIMULATE_SEED}",
        ]
    # analyze exits 1 on an infeasible candidate; that is still a valid
    # reference rendering, so don't check the exit code here.
    run = subprocess.run(argv, capture_output=True, text=True)
    return run.stdout


def run_smoke(args: argparse.Namespace) -> int:
    port_file = Path(tempfile.mkdtemp(prefix="ftmc_serve_")) / "port"
    argv = [args.ftmc, "serve", args.system, "--port=0",
            f"--port-file={port_file}"]
    if args.cache_dir:
        argv.append(f"--cache-dir={args.cache_dir}")
    if args.metrics_json:
        argv.append(f"--metrics-json={args.metrics_json}")
    daemon = subprocess.Popen(argv)
    try:
        port = wait_for_port(port_file, daemon)
        references = {
            method: cli_reference(args.ftmc, args.system, method)
            for method in ("analyze", "simulate")
        } if args.diff else {}
        failures = 0
        with socket.create_connection(("127.0.0.1", port)) as sock:
            for i in range(args.smoke):
                request = smoke_request(i, args.system)
                response = call(sock, request)
                if response.get("ok") is not True:
                    print(f"request {i} ({request['method']}) failed:"
                          f" {response}", file=sys.stderr)
                    failures += 1
                    continue
                if response.get("id") != i:
                    print(f"request {i}: id echoed as"
                          f" {response.get('id')!r}", file=sys.stderr)
                    failures += 1
                method = request["method"]
                if method in references:
                    served = response["result"].get("output", "")
                    if served != references[method]:
                        print(f"request {i}: {method} output differs from"
                              f" one-shot CLI ({len(served)} vs"
                              f" {len(references[method])} bytes)",
                              file=sys.stderr)
                        failures += 1
            response = call(sock, {"id": "bye", "method": "shutdown"})
            if response.get("ok") is not True:
                print(f"shutdown refused: {response}", file=sys.stderr)
                failures += 1
        code = daemon.wait(timeout=30)
        if code != 0:
            print(f"daemon exited with code {code}", file=sys.stderr)
            failures += 1
        if failures == 0:
            checked = " (analyze/simulate byte-identical to CLI)" \
                if args.diff else ""
            print(f"serve_client: {args.smoke} requests OK{checked}")
        return 1 if failures else 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


def run_single(args: argparse.Namespace) -> int:
    port = args.port
    if port is None:
        if not args.port_file:
            print("--request needs --port or --port-file", file=sys.stderr)
            return 2
        port = int(Path(args.port_file).read_text().strip())
    with socket.create_connection(("127.0.0.1", port)) as sock:
        response = call(sock, json.loads(args.request))
    print(json.dumps(response, indent=2))
    return 0 if response.get("ok") is True else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--request", help="one JSON request to send")
    parser.add_argument("--port", type=int)
    parser.add_argument("--port-file")
    parser.add_argument("--smoke", type=int,
                        help="spawn a daemon and send N mixed requests")
    parser.add_argument("--diff", action="store_true",
                        help="byte-compare analyze/simulate vs the CLI")
    parser.add_argument("--ftmc", help="path to the ftmc binary (smoke)")
    parser.add_argument("--system", help="system file to serve (smoke)")
    parser.add_argument("--cache-dir", help="persistent store root (smoke)")
    parser.add_argument("--metrics-json",
                        help="daemon --metrics-json path (smoke)")
    args = parser.parse_args()
    if args.smoke is not None:
        if not args.ftmc or not args.system:
            parser.error("--smoke requires --ftmc and --system")
        return run_smoke(args)
    if args.request:
        return run_single(args)
    parser.error("pass --smoke N or --request JSON")
    return 2


if __name__ == "__main__":
    sys.exit(main())
